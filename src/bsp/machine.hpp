// The specification model M(v): a deterministic superstep simulator.
//
// Section 2 of the paper defines M(v) as v processing elements with the RAM
// instruction set plus sync(i) / send(m, q) / receive(). We adopt the
// host-driven equivalent formulation the paper itself uses for analysis: the
// execution is a sequence of labeled supersteps, and in an i-superstep each
// processing element may only message peers sharing its i most significant
// index bits. The simulator
//
//   * runs the superstep body once per virtual processor (in index order, so
//     executions are deterministic),
//   * routes real message payloads into the recipients' next-superstep
//     inboxes (delivery order = sender index, then send order),
//   * enforces the cluster-containment rule (ClusterViolation on breach),
//   * records the exact degree of the superstep at every folding 2^j
//     (see bsp/trace.hpp), including "dummy" messages — the paper's device
//     for making algorithms (Θ(1), p)-wise without touching their state.
//
// Because the superstep sequence is issued by the host, every algorithm
// written against this API is *static* in the paper's sense: the number,
// order and labels of supersteps depend only on the input size.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bsp/trace.hpp"
#include "util/bits.hpp"

namespace nobl {

/// Thrown when an i-superstep sends a message outside the sender's i-cluster.
class ClusterViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// A delivered message: sender index plus payload.
template <typename Payload>
struct Message {
  std::uint64_t src = 0;
  Payload data{};
};

template <typename Payload>
class Machine;

/// Per-VP view handed to the superstep body: identity, inbox, send primitives.
template <typename Payload>
class Vp {
 public:
  using MessageT = Message<Payload>;

  /// This virtual processor's index r, 0 <= r < v.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  /// Machine size v.
  [[nodiscard]] std::uint64_t v() const noexcept { return machine_->v(); }
  [[nodiscard]] unsigned log_v() const noexcept { return machine_->log_v(); }

  /// Messages delivered at the sync that opened this superstep (i.e. all
  /// messages sent to this VP during the previous superstep).
  [[nodiscard]] const std::vector<MessageT>& inbox() const noexcept {
    return machine_->inbox_[id_];
  }

  /// send(m, q) of Section 2. The destination must lie in the sender's
  /// i-cluster, where i is the current superstep's label.
  void send(std::uint64_t dst, Payload data) {
    machine_->enqueue(id_, dst, std::move(data));
  }

  /// Dummy traffic: counts toward degrees (and therefore wiseness) exactly
  /// like `count` unit messages, but carries no payload and is not delivered.
  void send_dummy(std::uint64_t dst, std::uint64_t count = 1) {
    machine_->enqueue_dummy(id_, dst, count);
  }

 private:
  friend class Machine<Payload>;
  Vp(Machine<Payload>* machine, std::uint64_t id)
      : machine_(machine), id_(id) {}

  Machine<Payload>* machine_;
  std::uint64_t id_;
};

template <typename Payload>
class Machine {
 public:
  using MessageT = Message<Payload>;

  /// Create an M(v). v must be a power of two (Section 2's assumption).
  explicit Machine(std::uint64_t v)
      : log_v_(log2_exact(v)), v_(v), trace_(log_v_) {
    inbox_.resize(v_);
    staging_.resize(v_);
    const unsigned folds = log_v_ + 1;
    sent_.resize(folds);
    recv_.resize(folds);
    touched_.resize(folds);
    for (unsigned j = 0; j <= log_v_; ++j) {
      sent_[j].assign(std::size_t{1} << j, 0);
      recv_[j].assign(std::size_t{1} << j, 0);
    }
  }

  [[nodiscard]] std::uint64_t v() const noexcept { return v_; }
  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Execute one i-superstep: `body(vp)` runs for every VP in index order,
  /// then the closing sync(i) delivers all messages sent during the body.
  template <typename Body>
  void superstep(unsigned label, Body&& body) {
    superstep_range(label, 0, v_, std::forward<Body>(body));
  }

  /// Same as superstep(), but runs the body only for VPs in [first, last).
  /// Idle VPs still take part in the barrier; this is purely a simulator
  /// fast-path for supersteps whose active set is known to be a range.
  template <typename Body>
  void superstep_range(unsigned label, std::uint64_t first, std::uint64_t last,
                       Body&& body) {
    begin_superstep(label);
    for (std::uint64_t r = first; r < last; ++r) {
      Vp<Payload> vp(this, r);
      body(vp);
    }
    end_superstep();
  }

  /// Same as superstep(), but runs the body only for the listed VPs (which
  /// must be strictly increasing, for deterministic delivery order). Used by
  /// schedules whose active set per superstep is sparse, e.g. the stencil
  /// diamond phases where most submachines hold dummy diamonds.
  template <typename Body>
  void superstep_sparse(unsigned label, std::span<const std::uint64_t> active,
                        Body&& body) {
    begin_superstep(label);
    std::uint64_t previous = 0;
    bool first = true;
    for (const std::uint64_t r : active) {
      if (r >= v_ || (!first && r <= previous)) {
        in_superstep_ = false;
        throw std::invalid_argument(
            "Machine: sparse active set must be strictly increasing VP ids");
      }
      previous = r;
      first = false;
      Vp<Payload> vp(this, r);
      body(vp);
    }
    end_superstep();
  }

  /// Read access to a VP's current inbox between supersteps (used to extract
  /// results after the final sync).
  [[nodiscard]] const std::vector<MessageT>& inbox(std::uint64_t vp) const {
    return inbox_.at(vp);
  }

  /// Peak number of messages delivered to any single VP at any barrier —
  /// the communication-buffer component of a VP's memory footprint.
  /// Section 6 lists memory-constrained evaluation as future work; this
  /// audit is the hook for studying it (cf. the space-bounded schedulers of
  /// Chowdhury et al. / Simhadri et al.).
  [[nodiscard]] std::uint64_t peak_inbox_messages() const noexcept {
    return peak_inbox_;
  }

 private:
  friend class Vp<Payload>;

  void begin_superstep(unsigned label) {
    const unsigned label_bound = std::max(1u, log_v_);
    if (label >= label_bound) {
      throw std::invalid_argument("Machine: superstep label out of range");
    }
    if (in_superstep_) {
      throw std::logic_error("Machine: nested superstep");
    }
    in_superstep_ = true;
    label_ = label;
    messages_ = 0;
    record_.label = label;
    record_.degree.assign(log_v_ + 1, 0);
  }

  void end_superstep() {
    // Degrees: h(2^j) = max over processors of max(sent, received); the
    // touched lists let us reset the counters in O(#touched).
    for (unsigned j = 1; j <= log_v_; ++j) {
      std::uint64_t peak = 0;
      for (const std::uint64_t proc : touched_[j]) {
        peak = std::max(peak, std::max<std::uint64_t>(sent_[j][proc],
                                                      recv_[j][proc]));
        sent_[j][proc] = 0;
        recv_[j][proc] = 0;
      }
      touched_[j].clear();
      record_.degree[j] = peak;
    }
    record_.messages = messages_;
    trace_.append(std::move(record_));
    record_ = SuperstepRecord{};

    // Deliver: staged messages become the next superstep's inboxes.
    for (std::uint64_t r = 0; r < v_; ++r) {
      inbox_[r].swap(staging_[r]);
      staging_[r].clear();
      peak_inbox_ = std::max<std::uint64_t>(peak_inbox_, inbox_[r].size());
    }
    in_superstep_ = false;
  }

  void check_cluster(std::uint64_t src, std::uint64_t dst) const {
    if (dst >= v_) {
      throw std::out_of_range("Machine: destination VP out of range");
    }
    if (shared_msb(src, dst, log_v_) < label_) {
      throw ClusterViolation(
          "Machine: message leaves the sender's " + std::to_string(label_) +
          "-cluster (src=" + std::to_string(src) +
          ", dst=" + std::to_string(dst) + ")");
    }
  }

  void count_message(std::uint64_t src, std::uint64_t dst,
                     std::uint64_t count) {
    messages_ += count;
    if (src == dst) return;
    const std::uint64_t x = src ^ dst;
    // The endpoints share cb most-significant bits; folds with j > cb place
    // them on different processors.
    const unsigned cb = log_v_ - static_cast<unsigned>(std::bit_width(x));
    for (unsigned j = cb + 1; j <= log_v_; ++j) {
      const std::uint64_t ps = src >> (log_v_ - j);
      const std::uint64_t pd = dst >> (log_v_ - j);
      if (sent_[j][ps] == 0 && recv_[j][ps] == 0) touched_[j].push_back(ps);
      if (sent_[j][pd] == 0 && recv_[j][pd] == 0) touched_[j].push_back(pd);
      sent_[j][ps] += count;
      recv_[j][pd] += count;
    }
  }

  void enqueue(std::uint64_t src, std::uint64_t dst, Payload data) {
    if (!in_superstep_) throw std::logic_error("Machine: send outside superstep");
    check_cluster(src, dst);
    count_message(src, dst, 1);
    staging_[dst].push_back(MessageT{src, std::move(data)});
  }

  void enqueue_dummy(std::uint64_t src, std::uint64_t dst,
                     std::uint64_t count) {
    if (!in_superstep_) throw std::logic_error("Machine: send outside superstep");
    if (count == 0) return;
    check_cluster(src, dst);
    count_message(src, dst, count);
  }

  unsigned log_v_;
  std::uint64_t v_;
  Trace trace_;
  std::uint64_t peak_inbox_ = 0;

  std::vector<std::vector<MessageT>> inbox_;
  std::vector<std::vector<MessageT>> staging_;

  bool in_superstep_ = false;
  unsigned label_ = 0;
  std::uint64_t messages_ = 0;
  SuperstepRecord record_;

  // Per-fold degree counters, reset via touched lists after every superstep.
  std::vector<std::vector<std::uint64_t>> sent_;
  std::vector<std::vector<std::uint64_t>> recv_;
  std::vector<std::vector<std::uint64_t>> touched_;
};

}  // namespace nobl
