#include "bsp/trace.hpp"

#include <algorithm>

namespace nobl {

void Trace::append(SuperstepRecord record) {
  if (record.degree.size() != static_cast<std::size_t>(log_v_) + 1) {
    throw std::invalid_argument("Trace::append: degree vector size mismatch");
  }
  const unsigned label_bound = std::max(1u, log_v_);
  if (record.label >= label_bound) {
    throw std::invalid_argument("Trace::append: label out of range");
  }
  if (record.degree[0] != 0) {
    throw std::invalid_argument("Trace::append: nonzero degree at fold p=1");
  }
  steps_.push_back(std::move(record));
}

std::uint64_t Trace::S(unsigned label) const {
  std::uint64_t count = 0;
  for (const auto& s : steps_) {
    if (s.label == label) ++count;
  }
  return count;
}

std::uint64_t Trace::F(unsigned label, unsigned log_p) const {
  check_log_p(log_p);
  std::uint64_t sum = 0;
  for (const auto& s : steps_) {
    if (s.label == label) sum += s.degree[log_p];
  }
  return sum;
}

std::uint64_t Trace::total_F(unsigned log_p) const {
  check_log_p(log_p);
  std::uint64_t sum = 0;
  for (const auto& s : steps_) {
    if (s.label < log_p) sum += s.degree[log_p];
  }
  return sum;
}

std::uint64_t Trace::partial_F(unsigned label_bound, unsigned log_p) const {
  check_log_p(log_p);
  std::uint64_t sum = 0;
  for (const auto& s : steps_) {
    if (s.label < label_bound) sum += s.degree[log_p];
  }
  return sum;
}

std::uint64_t Trace::total_S(unsigned log_p) const {
  std::uint64_t count = 0;
  for (const auto& s : steps_) {
    if (s.label < log_p) ++count;
  }
  return count;
}

std::uint64_t Trace::total_messages() const {
  std::uint64_t sum = 0;
  for (const auto& s : steps_) sum += s.messages;
  return sum;
}

unsigned Trace::max_label() const {
  unsigned m = 0;
  for (const auto& s : steps_) m = std::max(m, s.label);
  return m;
}

void Trace::extend(const Trace& other) {
  if (other.log_v_ != log_v_) {
    throw std::invalid_argument("Trace::extend: incompatible machine sizes");
  }
  steps_.insert(steps_.end(), other.steps_.begin(), other.steps_.end());
}

}  // namespace nobl
