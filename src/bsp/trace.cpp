#include "bsp/trace.hpp"

#include <algorithm>

namespace nobl {

DegreeAccumulator::DegreeAccumulator(unsigned log_v) : log_v_(log_v) {}

void DegreeAccumulator::allocate_lanes() {
  const std::size_t v = std::size_t{1} << log_v_;
  sent_fine_.assign(v * log_v_, 0);
  recv_fine_.assign(v * log_v_, 0);
  active_.assign(v, 0);
  // The cluster scratch stays unallocated here: under the parallel engine
  // every lane counts, but only lane 0 (the absorb target) ever finalizes,
  // so finalize_into sizes it on first use instead.
}

void DegreeAccumulator::absorb(DegreeAccumulator& other) {
  if (other.log_v_ != log_v_) {
    throw std::invalid_argument("DegreeAccumulator::absorb: fold mismatch");
  }
  messages_ += other.messages_;
  other.messages_ = 0;
  if (!other.touched_.empty() && active_.empty()) allocate_lanes();
  for (const std::uint64_t r : other.touched_) {
    touch(r);
    for (unsigned cb = 0; cb < log_v_; ++cb) {
      const std::size_t idx = lane(cb) + r;
      sent_fine_[idx] += other.sent_fine_[idx];
      recv_fine_[idx] += other.recv_fine_[idx];
      other.sent_fine_[idx] = 0;
      other.recv_fine_[idx] = 0;
    }
    other.active_[r] = 0;
  }
  other.touched_.clear();
}

void DegreeAccumulator::finalize_into(SuperstepRecord& record) {
  if (record.degree.size() != static_cast<std::size_t>(log_v_) + 1) {
    throw std::invalid_argument(
        "DegreeAccumulator::finalize_into: degree vector size mismatch");
  }
  // Prefix over crossing levels: after this pass, lane j-1 of VP r holds the
  // number of messages r sent (received) that cross fold 2^j, i.e. the sum of
  // its lanes with cb < j. (cb-major layout: row cb is contiguous; when the
  // superstep touched every VP the rows are processed whole, without the
  // touched_ indirection, which lets the loops vectorize.)
  const std::size_t v = std::size_t{1} << log_v_;
  const bool dense = touched_.size() == v;
  for (unsigned cb = 1; cb < log_v_; ++cb) {
    if (dense) {
      for (std::size_t r = 0; r < v; ++r) {
        sent_fine_[lane(cb) + r] += sent_fine_[lane(cb - 1) + r];
        recv_fine_[lane(cb) + r] += recv_fine_[lane(cb - 1) + r];
      }
    } else {
      for (const std::uint64_t r : touched_) {
        sent_fine_[lane(cb) + r] += sent_fine_[lane(cb - 1) + r];
        recv_fine_[lane(cb) + r] += recv_fine_[lane(cb - 1) + r];
      }
    }
  }
  if (!touched_.empty() && cluster_active_.empty()) {
    cluster_sent_.assign(v, 0);
    cluster_recv_.assign(v, 0);
    cluster_active_.assign(v, 0);
  }
  // Per fold, reduce the touched VPs' prefixes onto their clusters and take
  // the peak: h(2^j) = max over processors of max(sent, received).
  for (unsigned j = 1; j <= log_v_; ++j) {
    for (const std::uint64_t r : touched_) {
      const std::uint64_t q = r >> (log_v_ - j);
      if (!cluster_active_[q]) {
        cluster_active_[q] = 1;
        cluster_touched_.push_back(q);
      }
      cluster_sent_[q] += sent_fine_[lane(j - 1) + r];
      cluster_recv_[q] += recv_fine_[lane(j - 1) + r];
    }
    std::uint64_t peak = 0;
    for (const std::uint64_t q : cluster_touched_) {
      peak = std::max(peak, std::max(cluster_sent_[q], cluster_recv_[q]));
      cluster_sent_[q] = 0;
      cluster_recv_[q] = 0;
      cluster_active_[q] = 0;
    }
    cluster_touched_.clear();
    record.degree[j] = peak;
  }
  if (dense) {
    std::fill(sent_fine_.begin(), sent_fine_.end(), 0);
    std::fill(recv_fine_.begin(), recv_fine_.end(), 0);
    std::fill(active_.begin(), active_.end(), 0);
  } else {
    for (unsigned cb = 0; cb < log_v_; ++cb) {
      for (const std::uint64_t r : touched_) {
        sent_fine_[lane(cb) + r] = 0;
        recv_fine_[lane(cb) + r] = 0;
      }
    }
    for (const std::uint64_t r : touched_) active_[r] = 0;
  }
  touched_.clear();
  record.messages = messages_;
  messages_ = 0;
}

void Trace::append(SuperstepRecord record) {
  if (record.degree.size() != static_cast<std::size_t>(log_v_) + 1) {
    throw std::invalid_argument("Trace::append: degree vector size mismatch");
  }
  if (record.label >= label_bound()) {
    throw std::invalid_argument("Trace::append: label out of range");
  }
  if (record.degree[0] != 0) {
    throw std::invalid_argument("Trace::append: nonzero degree at fold p=1");
  }
  total_messages_ += record.messages;
  max_label_ = std::max(max_label_, record.label);
  cache_valid_ = false;
  steps_.push_back(std::move(record));
}

void Trace::ensure_cache() const {
  if (cache_valid_) return;
  const unsigned bound = label_bound();
  const std::size_t folds = static_cast<std::size_t>(log_v_) + 1;
  label_F_.assign(bound * folds, 0);
  label_peak_.assign(bound * folds, 0);
  label_S_.assign(bound, 0);
  for (const auto& s : steps_) {
    const std::size_t base = s.label * folds;
    ++label_S_[s.label];
    for (std::size_t j = 0; j < folds; ++j) {
      label_F_[base + j] += s.degree[j];
      label_peak_[base + j] = std::max(label_peak_[base + j], s.degree[j]);
    }
  }
  cum_F_.assign((bound + 1) * folds, 0);
  cum_S_.assign(bound + 1, 0);
  for (unsigned i = 0; i < bound; ++i) {
    cum_S_[i + 1] = cum_S_[i] + label_S_[i];
    for (std::size_t j = 0; j < folds; ++j) {
      cum_F_[(i + 1) * folds + j] =
          cum_F_[i * folds + j] + label_F_[i * folds + j];
    }
  }
  cache_valid_ = true;
}

std::uint64_t Trace::S(unsigned label) const {
  ensure_cache();
  return label < label_bound() ? label_S_[label] : 0;
}

std::uint64_t Trace::F(unsigned label, unsigned log_p) const {
  check_log_p(log_p);
  ensure_cache();
  if (label >= label_bound()) return 0;
  return label_F_[label * (static_cast<std::size_t>(log_v_) + 1) + log_p];
}

std::uint64_t Trace::total_F(unsigned log_p) const {
  return partial_F(log_p, log_p);
}

std::uint64_t Trace::partial_F(unsigned label_bound, unsigned log_p) const {
  check_log_p(log_p);
  ensure_cache();
  const unsigned clamped = std::min(label_bound, this->label_bound());
  return cum_F_[clamped * (static_cast<std::size_t>(log_v_) + 1) + log_p];
}

std::uint64_t Trace::total_S(unsigned log_p) const {
  check_log_p(log_p);
  ensure_cache();
  return cum_S_[std::min(log_p, label_bound())];
}

std::uint64_t Trace::peak_degree(unsigned label, unsigned log_p) const {
  check_log_p(log_p);
  ensure_cache();
  if (label >= label_bound()) return 0;
  return label_peak_[label * (static_cast<std::size_t>(log_v_) + 1) + log_p];
}

void Trace::extend(const Trace& other) {
  if (other.log_v_ != log_v_) {
    throw std::invalid_argument("Trace::extend: incompatible machine sizes");
  }
  total_messages_ += other.total_messages_;
  max_label_ = std::max(max_label_, other.max_label_);
  cache_valid_ = false;
  steps_.insert(steps_.end(), other.steps_.begin(), other.steps_.end());
}

}  // namespace nobl
