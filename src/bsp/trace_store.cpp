#include "bsp/trace_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace nobl {
namespace {

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — table-driven, no
// external dependency.

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t crc32(const unsigned char* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives. Unsigned LEB128, at most 10 bytes for 64 bits;
// zigzag maps the two's-complement delta so small magnitudes of either sign
// pack into one byte.

void put_varint(std::vector<unsigned char>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<unsigned char>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<unsigned char>(value));
}

std::uint64_t zigzag_encode(std::uint64_t delta) {
  // Interpret the mod-2^64 delta as signed and fold the sign into bit 0.
  const auto s = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(s) << 1) ^
         static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t zigzag_decode(std::uint64_t coded) {
  return (coded >> 1) ^ (~(coded & 1) + 1);
}

void put_u16(std::vector<unsigned char>& out, std::uint16_t value) {
  out.push_back(static_cast<unsigned char>(value & 0xFFu));
  out.push_back(static_cast<unsigned char>(value >> 8));
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(value >> (8 * i)));
  }
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(value >> (8 * i)));
  }
}

/// Bounded forward cursor over the image; every read checks the remaining
/// bytes and reports the exact offset on a miss.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("binary trace: " + what + " at byte " +
                                std::to_string(pos));
  }

  std::uint8_t u8(const char* what) {
    if (pos >= size) fail(std::string("truncated ") + what);
    return data[pos++];
  }

  std::uint32_t u32(const char* what) {
    if (size - pos < 4) fail(std::string("truncated ") + what);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return value;
  }

  std::uint64_t u64(const char* what) {
    if (size - pos < 8) fail(std::string("truncated ") + what);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return value;
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
      if (pos >= size) fail(std::string("truncated ") + what);
      const unsigned char byte = data[pos++];
      if (shift == 63 && (byte & 0xFEu) != 0) {
        fail(std::string("varint overflows 64 bits in ") + what);
      }
      value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) return value;
    }
    fail(std::string("varint too long in ") + what);
  }
};

constexpr std::size_t kHeaderBytes = 12;
constexpr unsigned char kFooterSentinel = 0xFF;

/// Parse and validate the 12-byte header; returns log_v.
unsigned parse_header(Cursor& cursor) {
  if (cursor.size < kHeaderBytes) {
    cursor.pos = cursor.size;
    cursor.fail("truncated header");
  }
  if (std::memcmp(cursor.data, kTraceBinMagic, 4) != 0) {
    throw std::invalid_argument(
        "binary trace: bad magic at byte 0 (expected \"NBLT\")");
  }
  cursor.pos = 4;
  const std::uint16_t version =
      static_cast<std::uint16_t>(cursor.u8("version")) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(cursor.u8(
                                     "version"))
                                 << 8);
  if (version != kTraceBinVersion) {
    throw std::invalid_argument(
        "binary trace: unsupported version " + std::to_string(version) +
        " at byte 4 (this reader understands version " +
        std::to_string(kTraceBinVersion) + ")");
  }
  const std::uint16_t log_v =
      static_cast<std::uint16_t>(cursor.u8("log_v")) |
      static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(cursor.u8("log_v")) << 8);
  if (log_v > 63) {
    throw std::invalid_argument("binary trace: log_v " +
                                std::to_string(log_v) +
                                " out of range at byte 6");
  }
  const std::uint32_t stored = cursor.u32("header checksum");
  const std::uint32_t computed = crc32(cursor.data, 8);
  if (stored != computed) {
    throw std::invalid_argument(
        "binary trace: header checksum mismatch at byte 8");
  }
  return log_v;
}

/// Walk every block (and the footer) of an image whose header has already
/// been parsed, invoking `fn` once per decoded superstep. Exactly one
/// SuperstepRecord is live at any point; `*live_peak` (when non-null)
/// records the instrumented maximum.
void walk_blocks(const unsigned char* data, std::size_t size, unsigned log_v,
                 const std::function<void(const SuperstepRecord&)>& fn,
                 std::size_t* live_peak) {
  Cursor cursor{data, size, kHeaderBytes};
  const unsigned label_bound = log_v < 1 ? 1u : log_v;
  SuperstepRecord record;
  record.degree.assign(log_v + 1u, 0);
  std::vector<std::uint64_t> prev(log_v + 1u, 0);
  if (live_peak != nullptr) *live_peak = std::max<std::size_t>(*live_peak, 1);
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  for (;;) {
    if (cursor.pos >= size) cursor.fail("truncated file: missing footer");
    if (data[cursor.pos] == kFooterSentinel) break;
    const std::size_t block_start = cursor.pos;
    const std::uint64_t label = cursor.varint("block label");
    if (label >= label_bound) {
      cursor.pos = block_start;
      cursor.fail("superstep label " + std::to_string(label) +
                  " out of range in block");
    }
    record.label = static_cast<unsigned>(label);
    record.messages = cursor.varint("block message count");
    for (unsigned j = 1; j <= log_v; ++j) {
      const std::uint64_t delta = zigzag_decode(cursor.varint("degree delta"));
      record.degree[j] = prev[j] + delta;  // mod 2^64 by construction
    }
    const std::size_t payload_end = cursor.pos;
    const std::uint32_t stored = cursor.u32("block checksum");
    const std::uint32_t computed =
        crc32(data + block_start, payload_end - block_start);
    if (stored != computed) {
      cursor.pos = block_start;
      cursor.fail("block checksum mismatch");
    }
    std::copy(record.degree.begin(), record.degree.end(), prev.begin());
    ++supersteps;
    total_messages += record.messages;
    fn(record);
  }
  const std::size_t footer_start = cursor.pos;
  cursor.u8("footer sentinel");
  const std::uint64_t footer_supersteps = cursor.u64("footer superstep count");
  const std::uint64_t footer_messages = cursor.u64("footer message total");
  const std::size_t footer_payload_end = cursor.pos;
  const std::uint32_t stored = cursor.u32("footer checksum");
  const std::uint32_t computed =
      crc32(data + footer_start, footer_payload_end - footer_start);
  if (stored != computed) {
    cursor.pos = footer_start;
    cursor.fail("footer checksum mismatch");
  }
  if (footer_supersteps != supersteps) {
    cursor.pos = footer_start;
    cursor.fail("footer superstep count " + std::to_string(footer_supersteps) +
                " does not match the " + std::to_string(supersteps) +
                " blocks read");
  }
  if (footer_messages != total_messages) {
    cursor.pos = footer_start;
    cursor.fail("footer message total mismatch");
  }
  if (cursor.pos != size) {
    cursor.fail("trailing bytes after footer");
  }
}

}  // namespace

bool looks_like_trace_bin(const std::string& bytes) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kTraceBinMagic, 4) == 0;
}

// ---------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(std::ostream& os, unsigned log_v)
    : os_(&os), log_v_(log_v) {
  if (log_v > 63) {
    throw std::invalid_argument("TraceWriter: log_v out of range");
  }
  prev_degree_.assign(log_v + 1u, 0);
  scratch_.clear();
  for (const unsigned char byte : kTraceBinMagic) scratch_.push_back(byte);
  put_u16(scratch_, kTraceBinVersion);
  put_u16(scratch_, static_cast<std::uint16_t>(log_v));
  put_u32(scratch_, crc32(scratch_.data(), scratch_.size()));
  os_->write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  bytes_ += scratch_.size();
}

TraceWriter::~TraceWriter() {
  if (!finished_ && os_ != nullptr) {
    try {
      finish();
    } catch (...) {
      // A failing stream already carries the error in its state; never
      // throw from a destructor.
    }
  }
}

void TraceWriter::append(const SuperstepRecord& record) {
  if (finished_) {
    throw std::logic_error("TraceWriter: append after finish");
  }
  if (record.degree.size() != static_cast<std::size_t>(log_v_) + 1) {
    throw std::invalid_argument("TraceWriter: degree vector size mismatch");
  }
  if (record.label >= (log_v_ < 1 ? 1u : log_v_)) {
    throw std::invalid_argument("TraceWriter: label out of range");
  }
  if (record.degree[0] != 0) {
    throw std::invalid_argument("TraceWriter: nonzero degree at fold p=1");
  }
  scratch_.clear();
  put_varint(scratch_, record.label);
  put_varint(scratch_, record.messages);
  for (unsigned j = 1; j <= log_v_; ++j) {
    put_varint(scratch_, zigzag_encode(record.degree[j] - prev_degree_[j]));
    prev_degree_[j] = record.degree[j];
  }
  put_u32(scratch_, crc32(scratch_.data(), scratch_.size()));
  os_->write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  bytes_ += scratch_.size();
  ++supersteps_;
  total_messages_ += record.messages;
}

void TraceWriter::finish() {
  if (finished_) return;
  scratch_.clear();
  scratch_.push_back(kFooterSentinel);
  put_u64(scratch_, supersteps_);
  put_u64(scratch_, total_messages_);
  put_u32(scratch_, crc32(scratch_.data(), scratch_.size()));
  os_->write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  bytes_ += scratch_.size();
  finished_ = true;
}

std::size_t TraceWriter::resident_bytes() const noexcept {
  return prev_degree_.capacity() * sizeof(std::uint64_t) +
         scratch_.capacity() * sizeof(unsigned char);
}

// ---------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::invalid_argument("TraceReader: cannot open \"" + path + "\"");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::invalid_argument("TraceReader: cannot stat \"" + path + "\"");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    throw std::invalid_argument(
        "binary trace: truncated header at byte 0 (empty file \"" + path +
        "\")");
  }
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    throw std::invalid_argument("TraceReader: cannot mmap \"" + path + "\"");
  }
  map_ = map;
  map_size_ = size_;
  data_ = static_cast<const unsigned char*>(map);
  try {
    build_index();
  } catch (...) {
    unmap();
    throw;
  }
}

TraceReader TraceReader::from_bytes(std::string bytes) {
  TraceReader reader;
  reader.owned_ = std::move(bytes);
  reader.data_ = reinterpret_cast<const unsigned char*>(reader.owned_.data());
  reader.size_ = reader.owned_.size();
  reader.build_index();
  return reader;
}

TraceReader::~TraceReader() { unmap(); }

TraceReader::TraceReader(TraceReader&& other) noexcept
    : owned_(std::move(other.owned_)),
      map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      size_(other.size_),
      log_v_(other.log_v_),
      supersteps_(other.supersteps_),
      total_messages_(other.total_messages_),
      max_label_(other.max_label_),
      peak_live_blocks_(other.peak_live_blocks_),
      label_F_(std::move(other.label_F_)),
      label_peak_(std::move(other.label_peak_)),
      label_S_(std::move(other.label_S_)),
      cum_F_(std::move(other.cum_F_)),
      cum_S_(std::move(other.cum_S_)) {
  data_ = map_ != nullptr
              ? static_cast<const unsigned char*>(map_)
              : reinterpret_cast<const unsigned char*>(owned_.data());
  other.data_ = nullptr;
  other.size_ = 0;
}

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this == &other) return *this;
  unmap();
  owned_ = std::move(other.owned_);
  map_ = std::exchange(other.map_, nullptr);
  map_size_ = std::exchange(other.map_size_, 0);
  size_ = other.size_;
  log_v_ = other.log_v_;
  supersteps_ = other.supersteps_;
  total_messages_ = other.total_messages_;
  max_label_ = other.max_label_;
  peak_live_blocks_ = other.peak_live_blocks_;
  label_F_ = std::move(other.label_F_);
  label_peak_ = std::move(other.label_peak_);
  label_S_ = std::move(other.label_S_);
  cum_F_ = std::move(other.cum_F_);
  cum_S_ = std::move(other.cum_S_);
  data_ = map_ != nullptr
              ? static_cast<const unsigned char*>(map_)
              : reinterpret_cast<const unsigned char*>(owned_.data());
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

void TraceReader::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
}

void TraceReader::build_index() {
  Cursor cursor{data_, size_, 0};
  log_v_ = parse_header(cursor);
  const unsigned bound = label_bound();
  const std::size_t folds = static_cast<std::size_t>(log_v_) + 1;
  label_F_.assign(bound * folds, 0);
  label_peak_.assign(bound * folds, 0);
  label_S_.assign(bound, 0);
  supersteps_ = 0;
  total_messages_ = 0;
  max_label_ = 0;
  walk_blocks(
      data_, size_, log_v_,
      [&](const SuperstepRecord& record) {
        const std::size_t base = record.label * folds;
        ++label_S_[record.label];
        for (std::size_t j = 0; j < folds; ++j) {
          label_F_[base + j] += record.degree[j];
          label_peak_[base + j] =
              std::max(label_peak_[base + j], record.degree[j]);
        }
        ++supersteps_;
        total_messages_ += record.messages;
        max_label_ = std::max(max_label_, record.label);
      },
      &peak_live_blocks_);
  cum_F_.assign((bound + 1) * folds, 0);
  cum_S_.assign(bound + 1, 0);
  for (unsigned i = 0; i < bound; ++i) {
    cum_S_[i + 1] = cum_S_[i] + label_S_[i];
    for (std::size_t j = 0; j < folds; ++j) {
      cum_F_[(i + 1) * folds + j] =
          cum_F_[i * folds + j] + label_F_[i * folds + j];
    }
  }
}

void TraceReader::check_log_p(unsigned log_p) const {
  if (log_p > log_v_) {
    throw std::out_of_range(
        "TraceReader: fold larger than specification model");
  }
}

std::uint64_t TraceReader::S(unsigned label) const {
  return label < label_bound() ? label_S_[label] : 0;
}

std::uint64_t TraceReader::F(unsigned label, unsigned log_p) const {
  check_log_p(log_p);
  if (label >= label_bound()) return 0;
  return label_F_[label * (static_cast<std::size_t>(log_v_) + 1) + log_p];
}

std::uint64_t TraceReader::total_F(unsigned log_p) const {
  return partial_F(log_p, log_p);
}

std::uint64_t TraceReader::partial_F(unsigned label_bound,
                                     unsigned log_p) const {
  check_log_p(log_p);
  const unsigned clamped = std::min(label_bound, this->label_bound());
  return cum_F_[clamped * (static_cast<std::size_t>(log_v_) + 1) + log_p];
}

std::uint64_t TraceReader::total_S(unsigned log_p) const {
  check_log_p(log_p);
  return cum_S_[std::min(log_p, label_bound())];
}

std::uint64_t TraceReader::peak_degree(unsigned label, unsigned log_p) const {
  check_log_p(log_p);
  if (label >= label_bound()) return 0;
  return label_peak_[label * (static_cast<std::size_t>(log_v_) + 1) + log_p];
}

void TraceReader::for_each_step(
    const std::function<void(const SuperstepRecord&)>& fn) const {
  walk_blocks(data_, size_, log_v_, fn, &peak_live_blocks_);
}

Trace TraceReader::materialize() const {
  Trace trace(log_v_);
  for_each_step([&](const SuperstepRecord& record) { trace.append(record); });
  return trace;
}

std::size_t TraceReader::resident_bytes() const noexcept {
  return (label_F_.capacity() + label_peak_.capacity() + label_S_.capacity() +
          cum_F_.capacity() + cum_S_.capacity()) *
         sizeof(std::uint64_t);
}

}  // namespace nobl
