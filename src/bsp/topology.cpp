#include "bsp/topology.hpp"

#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/table.hpp"

namespace nobl {
namespace topology {
namespace {

void require_power_of_two(std::uint64_t p) {
  if (!is_pow2(p) || p < 2) {
    throw std::invalid_argument("topology: p must be a power of two >= 2");
  }
}

DbspParams finalize(DbspParams params) {
  if (!params.monotone()) {
    throw std::logic_error("topology: constructed parameters violate "
                           "Theorem 3.4 monotonicity");
  }
  return params;
}

}  // namespace

DbspParams mesh(std::uint64_t p, unsigned d, double g0, double ell0) {
  require_power_of_two(p);
  if (d == 0) throw std::invalid_argument("mesh: dimension must be >= 1");
  const unsigned log_p = log2_exact(p);
  DbspParams params;
  params.name = std::to_string(d) + "d-mesh(p=" + std::to_string(p) + ")";
  params.g.resize(log_p);
  params.ell.resize(log_p);
  for (unsigned i = 0; i < log_p; ++i) {
    const double cluster = std::ldexp(1.0, static_cast<int>(log_p - i));
    const double side = std::pow(cluster, 1.0 / d);
    params.g[i] = g0 * side;          // gap: cluster / bisection = side
    params.ell[i] = ell0 * d * side;  // latency: sub-mesh diameter
  }
  return finalize(std::move(params));
}

DbspParams linear_array(std::uint64_t p, double g0, double ell0) {
  DbspParams params = mesh(p, 1, g0, ell0);
  params.name = "linear-array(p=" + std::to_string(p) + ")";
  return params;
}

DbspParams hypercube(std::uint64_t p, double g0, double ell0) {
  require_power_of_two(p);
  const unsigned log_p = log2_exact(p);
  DbspParams params;
  params.name = "hypercube(p=" + std::to_string(p) + ")";
  params.g.resize(log_p);
  params.ell.resize(log_p);
  for (unsigned i = 0; i < log_p; ++i) {
    params.g[i] = g0;
    params.ell[i] = ell0 * static_cast<double>(log_p - i);
  }
  return finalize(std::move(params));
}

DbspParams fat_tree(std::uint64_t p, double g0, double ell0) {
  DbspParams params = hypercube(p, g0, ell0);
  params.name = "fat-tree(p=" + std::to_string(p) + ")";
  return params;
}

DbspParams uniform(std::uint64_t p, double g, double ell) {
  require_power_of_two(p);
  const unsigned log_p = log2_exact(p);
  DbspParams params;
  params.name = "uniform-bsp(p=" + std::to_string(p) + ")";
  params.g.assign(log_p, g);
  params.ell.assign(log_p, ell);
  return finalize(std::move(params));
}

DbspParams geometric(std::uint64_t p, double g0, double rg, double ell0,
                     double rl) {
  require_power_of_two(p);
  if (rg <= 0 || rg > 1 || rl <= 0 || rl > 1 || rl > rg) {
    throw std::invalid_argument(
        "geometric: need 0 < rl <= rg <= 1 for monotone parameters");
  }
  const unsigned log_p = log2_exact(p);
  DbspParams params;
  params.name = "geometric(p=" + std::to_string(p) + ",rg=" +
                Table::format_double(rg) + ",rl=" + Table::format_double(rl) +
                ")";
  params.g.resize(log_p);
  params.ell.resize(log_p);
  double g = g0;
  double ell = ell0;
  for (unsigned i = 0; i < log_p; ++i) {
    params.g[i] = g;
    params.ell[i] = ell;
    g *= rg;
    ell *= rl;
  }
  return finalize(std::move(params));
}

std::vector<DbspParams> standard_suite(std::uint64_t p) {
  std::vector<DbspParams> suite;
  suite.push_back(hypercube(p));
  suite.push_back(fat_tree(p, 1.0, 4.0));
  suite.push_back(mesh(p, 2));
  suite.push_back(mesh(p, 3));
  suite.push_back(linear_array(p));
  suite.push_back(uniform(p, 1.0, 16.0));
  suite.push_back(geometric(p, 8.0, 0.75, 64.0, 0.5));
  return suite;
}

}  // namespace topology
}  // namespace nobl
