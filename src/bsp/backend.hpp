// Pluggable execution backends for the Program API: the seam between the
// paper's specification model and everything that interprets it.
//
// An algorithm in this repository is a *program*: a callable, templated on a
// Backend type, that emits a sequence of labeled supersteps whose bodies are
// written against the abstract VpContext concept —
//
//   vp.id(), vp.v(), vp.log_v()        identity
//   vp.send(dst, payload)              a real message (delivered only by
//                                      delivering backends)
//   vp.send_dummy(dst, count)          degree-only traffic (§ wiseness)
//
// plus the backend-level superstep drivers
//
//   bk.superstep(label, body)
//   bk.superstep_range(label, first, last, body)
//   bk.superstep_sparse(label, active, body)
//
// and the compile-time predicate `Backend::delivers`. A program must compute
// every destination and message count from host-mirrored state (never from
// delivered payloads), so that the same body sequence produces the same
// communication pattern under every backend; payload *values* may flow
// through messages and be read back — via bk.inbox(r) between supersteps —
// only inside `if constexpr (Backend::delivers)` regions.
//
// Three backends interpret a program:
//
//   SimulateBackend<Payload> — the full M(v) simulator (bsp/machine.hpp),
//     sequential or parallel engine, payload routing, inboxes, peak-inbox
//     audit. This *is* Machine<Payload>: the historical entry points keep
//     working, and the golden/equivalence suites pin bit-identity.
//
//   CostBackend — drives the same bodies sequentially but intercepts
//     send/send_dummy into DegreeAccumulator bucketing only: no payload
//     storage, no delivery, no inboxes. Pure cost queries (`nobl certify`,
//     wiseness/optimality scans, threshold-gated campaigns) become
//     message-storage-free while producing bit-identical traces.
//
//   RecordBackend — a CostBackend that additionally captures the pattern as
//     a replayable Schedule: per superstep, the (src, dst, count, dummy)
//     events in execution order. Schedules feed conformance oracles and
//     re-derive the trace without re-running the program (replay_trace).
//
// Validation parity: cost/record backends enforce the same rules as the
// simulator — label range, no nested supersteps, strictly increasing sparse
// active sets, destination range, and the i-cluster containment rule
// (ClusterViolation) — so a program that certifies under CostBackend also
// runs under SimulateBackend, and vice versa.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bsp/execution.hpp"
#include "bsp/machine.hpp"
#include "bsp/trace.hpp"
#include "dist/backend.hpp"
#include "util/bits.hpp"

namespace nobl {

/// Backend selector carried by CLIs, campaign specs and registry runners.
///
/// kAnalytic is the cost-optimizer path (core/analytic.hpp): registry
/// runners answer it without executing the program — symbolically for
/// kernels whose closed form is exact, via a memoized record-once /
/// replay-many schedule cache for the other input-independent kernels, and
/// by falling back to kCost for data-dependent kernels (samplesort). It is
/// dispatched in the registry layer; run_for_trace itself rejects it
/// because a bare program carries no closed form.
///
/// kDistributed executes the program on real forked worker processes (one
/// per VP cluster; dist/backend.hpp), merging per-superstep event blocks
/// over a fork or loopback-TCP channel into a trace bit-identical to the
/// in-process backends, with measured wall-clock per superstep on the side.
enum class BackendKind : std::uint8_t {
  kSimulate,
  kCost,
  kRecord,
  kAnalytic,
  kDistributed
};

/// "simulate" | "cost" | "record" | "analytic" | "distributed".
[[nodiscard]] std::string to_string(BackendKind kind);

/// Inverse of to_string; throws std::invalid_argument listing the valid
/// names on a miss.
[[nodiscard]] BackendKind backend_from_string(const std::string& name);

/// Every backend, in declaration order (registry entries default to this).
[[nodiscard]] const std::vector<BackendKind>& all_backend_kinds();

struct Schedule;
class TraceWriter;

/// How to execute one specification-model run: which backend interprets the
/// program, and (for the simulating backend) which engine drives VP bodies.
/// Implicitly constructible from an ExecutionPolicy so historical
/// `runner(n, policy)` call sites keep reading naturally.
struct RunOptions {
  ExecutionPolicy policy{};
  BackendKind backend = BackendKind::kSimulate;
  /// When non-null and backend == kRecord or kDistributed, run_for_trace
  /// copies the captured Schedule here — the seam the analytic memo cache
  /// uses to lift a kernel's communication pattern out of one recorded run,
  /// and the seam the distributed conformance tests use to compare merged
  /// event streams against RecordBackend.
  Schedule* capture = nullptr;
  /// kDistributed only: worker count and transport.
  dist::DistConfig dist{};
  /// kDistributed only: when non-null, receives the measured wall-clock
  /// column (per superstep + total) of the distributed run.
  dist::Measurement* measure = nullptr;

  RunOptions() = default;
  // NOLINTNEXTLINE(runtime/explicit): deliberate converting constructor
  RunOptions(const ExecutionPolicy& p) : policy(p) {}
  // NOLINTNEXTLINE(runtime/explicit): deliberate converting constructor
  RunOptions(BackendKind b) : backend(b) {}
  RunOptions(const ExecutionPolicy& p, BackendKind b)
      : policy(p), backend(b) {}
};

/// The simulating backend is the M(v) machine itself: it already models the
/// whole Backend concept (superstep drivers, Vp handles, trace, inboxes,
/// Machine::delivers). The alias is the API name programs are written
/// against; Machine remains the engine-facing name.
template <typename Payload>
using SimulateBackend = Machine<Payload>;

/// One recorded communication event: `count` unit messages src -> dst
/// (count > 1 only for dummy traffic; real sends record one event each).
/// This is a *row view* over ScheduleStep's columns — events are stored
/// columnar, never as a vector of these.
struct ScheduleSend {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t count = 1;
  bool dummy = false;

  friend bool operator==(const ScheduleSend&, const ScheduleSend&) = default;
};

/// One recorded superstep as a columnar block: label plus parallel src /
/// dst / count columns and a dummy bitmap (bit i of word i/64), in
/// execution order (ascending sender under the sequential driver,
/// per-sender send order). The same block layout the binary trace store
/// uses: O(E) scans (ir_opt classification, replay) walk contiguous
/// columns, equality and content hashing compare whole words.
class ScheduleStep {
 public:
  unsigned label = 0;

  ScheduleStep() = default;
  explicit ScheduleStep(unsigned step_label) : label(step_label) {}
  /// Test/fixture convenience: build a block from rows.
  ScheduleStep(unsigned step_label, std::initializer_list<ScheduleSend> rows)
      : label(step_label) {
    for (const ScheduleSend& row : rows) {
      push(row.src, row.dst, row.count, row.dummy);
    }
  }

  /// Append one event.
  void push(std::uint64_t src, std::uint64_t dst, std::uint64_t count,
            bool dummy) {
    const std::size_t i = src_.size();
    src_.push_back(src);
    dst_.push_back(dst);
    count_.push_back(count);
    if ((i & 63) == 0) dummy_words_.push_back(0);
    if (dummy) dummy_words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  [[nodiscard]] std::size_t size() const noexcept { return src_.size(); }
  [[nodiscard]] bool empty() const noexcept { return src_.empty(); }

  /// Materialize row i as a ScheduleSend view.
  [[nodiscard]] ScheduleSend operator[](std::size_t i) const {
    return {src_[i], dst_[i], count_[i], dummy(i)};
  }
  [[nodiscard]] bool dummy(std::size_t i) const {
    return ((dummy_words_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  // Raw columns, for O(E) scans.
  [[nodiscard]] const std::vector<std::uint64_t>& src() const noexcept {
    return src_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& dst() const noexcept {
    return dst_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& count() const noexcept {
    return count_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& dummy_words() const noexcept {
    return dummy_words_;
  }

  friend bool operator==(const ScheduleStep&, const ScheduleStep&) = default;

 private:
  std::vector<std::uint64_t> src_;
  std::vector<std::uint64_t> dst_;
  std::vector<std::uint64_t> count_;
  std::vector<std::uint64_t> dummy_words_;
};

/// A replayable communication pattern: the Program IR made first-class.
/// Recorded by RecordBackend; consumed by conformance oracles and by
/// replay_trace, which re-derives the full per-fold degree trace from the
/// events alone — no program, no payloads, no machine.
struct Schedule {
  unsigned log_v = 0;
  std::vector<ScheduleStep> steps;

  [[nodiscard]] std::uint64_t v() const noexcept {
    return std::uint64_t{1} << log_v;
  }
  /// Total recorded events (not messages: a dummy burst is one event).
  [[nodiscard]] std::size_t total_sends() const noexcept;
  /// Re-derive the trace by feeding every event through a fresh
  /// DegreeAccumulator per superstep — the replay half of record/replay.
  [[nodiscard]] Trace replay_trace() const;
  /// FNV-1a over log_v and every block's label and columns: the
  /// content address under which the analytic memo cache stores replayed
  /// traces (two schedules with identical patterns share one entry).
  [[nodiscard]] std::uint64_t content_hash() const noexcept;
};

/// The payload-free counting backend. Bodies run inline, in VP index order
/// (the reference semantics); send/send_dummy collapse to O(1) degree
/// bucketing. trace() is bit-identical to the simulator's by construction:
/// both feed the same (src, dst, count) stream into the same accumulator.
class CostBackend {
 public:
  static constexpr bool delivers = false;

  /// The VpContext handle for counting backends. The hot per-send state
  /// (machine size, cluster shift, accumulator, capture sink) is cached in
  /// the handle at construction, and the send half of the degree stream is
  /// batched per source VP — every send of one VP shares its src, so the
  /// sent-side buckets and the message total accumulate on the stack and
  /// flush into the DegreeAccumulator once per VP (commit(), called by the
  /// superstep driver). The resulting accumulator state is bit-identical
  /// to per-message counting; only the constant factor changes.
  template <bool kCapture>
  class VpRefT {
   public:
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] std::uint64_t v() const noexcept { return v_; }
    [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }

    /// Count a real message. The payload argument is accepted for call-site
    /// compatibility with the simulator and discarded unread — cost runs
    /// never construct message storage.
    template <typename Payload>
    void send(std::uint64_t dst, Payload&&) {
      if (dst >= v_ || ((id_ ^ dst) >> breach_shift_) != 0) [[unlikely]] {
        backend_->fail_send(id_, dst);
      }
      ++messages_;
      if (dst != id_) bucket(dst, 1);
      if constexpr (kCapture) {
        capture_->steps.back().push(id_, dst, 1, false);
      }
    }
    void send_dummy(std::uint64_t dst, std::uint64_t count = 1) {
      if (count == 0) return;
      if (dst >= v_ || ((id_ ^ dst) >> breach_shift_) != 0) [[unlikely]] {
        backend_->fail_send(id_, dst);
      }
      messages_ += count;
      if (dst != id_) bucket(dst, count);
      if constexpr (kCapture) {
        capture_->steps.back().push(id_, dst, count, true);
      }
    }

   private:
    friend class CostBackend;
    VpRefT(CostBackend* backend, std::uint64_t id)
        : backend_(backend),
          acc_(&backend->acc_),
          capture_(backend->capture_),
          active_data_(backend->acc_.active_data()),
          recv_data_(backend->acc_.recv_data()),
          id_(id),
          v_(backend->v_),
          log_v_(backend->log_v_),
          breach_shift_(backend->breach_shift_) {}

    void bucket(std::uint64_t dst, std::uint64_t count) {
      // The endpoints share cb most-significant bits (cf.
      // DegreeAccumulator::count); receive side goes straight to the
      // accumulator's lanes (raw pointers cached at construction — the
      // lanes are pre-sized by begin_superstep), send side into the local
      // per-src buckets.
      const auto cb = static_cast<unsigned>(
          log_v_ - static_cast<unsigned>(std::bit_width(id_ ^ dst)));
      if (((dirty_ >> cb) & 1) == 0) {
        sent_[cb] = 0;
        dirty_ |= std::uint64_t{1} << cb;
      }
      sent_[cb] += count;
      if (active_data_[dst] == 0) [[unlikely]] {
        active_data_[dst] = 1;
        acc_->note_touched(dst);
      }
      recv_data_[(static_cast<std::size_t>(cb) << log_v_) + dst] += count;
    }

    /// Flush the batched send half; the driver calls this exactly once,
    /// after the body returns.
    void commit() { acc_->flush_sent(id_, dirty_, sent_, messages_); }

    CostBackend* backend_;
    DegreeAccumulator* acc_;
    Schedule* capture_;
    std::uint8_t* active_data_;
    std::uint64_t* recv_data_;
    std::uint64_t id_;
    std::uint64_t v_;
    unsigned log_v_;
    unsigned breach_shift_;
    std::uint64_t messages_ = 0;
    std::uint64_t dirty_ = 0;  ///< bit cb set iff sent_[cb] is live
    std::uint64_t sent_[64];   ///< per-crossing-level send counts (lazy init)
  };

  /// Create a counting backend for M(v). v must be a power of two.
  explicit CostBackend(std::uint64_t v)
      : log_v_(log2_exact(v)), v_(v), acc_(log_v_), trace_(log_v_) {}

  [[nodiscard]] std::uint64_t v() const noexcept { return v_; }
  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Stream mode: route every finalized superstep record into `writer`
  /// (bsp/trace_store.hpp) instead of appending to the in-memory trace.
  /// While streaming, trace() stays empty and the backend's live trace
  /// state is O(log v) — one record plus the writer's previous-column
  /// delta state — so arbitrarily long programs record in constant memory.
  /// Pass nullptr to return to in-memory accumulation. The writer must
  /// outlive every superstep driven after this call; its log_v must equal
  /// the backend's.
  void stream_to(TraceWriter* writer);

  template <typename Body>
  void superstep(unsigned label, Body&& body) {
    superstep_range(label, 0, v_, std::forward<Body>(body));
  }

  template <typename Body>
  void superstep_range(unsigned label, std::uint64_t first, std::uint64_t last,
                       Body&& body) {
    begin_superstep(label);
    if (capture_ == nullptr) {
      for (std::uint64_t r = first; r < last; ++r) {
        VpRefT<false> vp(this, r);
        body(vp);
        vp.commit();
      }
    } else {
      for (std::uint64_t r = first; r < last; ++r) {
        VpRefT<true> vp(this, r);
        body(vp);
        vp.commit();
      }
    }
    end_superstep();
  }

  template <typename Body>
  void superstep_sparse(unsigned label, std::span<const std::uint64_t> active,
                        Body&& body) {
    begin_superstep(label);
    std::uint64_t previous = 0;
    bool first = true;
    for (const std::uint64_t r : active) {
      if (r >= v_ || (!first && r <= previous)) {
        in_superstep_ = false;
        throw std::invalid_argument(
            "CostBackend: sparse active set must be strictly increasing VP "
            "ids");
      }
      previous = r;
      first = false;
    }
    if (capture_ == nullptr) {
      for (const std::uint64_t r : active) {
        VpRefT<false> vp(this, r);
        body(vp);
        vp.commit();
      }
    } else {
      for (const std::uint64_t r : active) {
        VpRefT<true> vp(this, r);
        body(vp);
        vp.commit();
      }
    }
    end_superstep();
  }

 protected:
  /// Derived backends route a non-null `capture` to record every event.
  void set_capture(Schedule* capture) noexcept { capture_ = capture; }

 private:
  void begin_superstep(unsigned label) {
    if (label >= trace_.label_bound()) {
      throw std::invalid_argument("CostBackend: superstep label out of range");
    }
    if (in_superstep_) {
      throw std::logic_error("CostBackend: nested superstep");
    }
    in_superstep_ = true;
    label_ = label;
    // A message breaches the sender's label_-cluster iff src and dst differ
    // in any of the top label_ bits: (src ^ dst) >> breach_shift_ != 0.
    // Precomputing the shift keeps the per-send check to xor + shift.
    breach_shift_ = log_v_ - label;
    acc_.ensure_lanes();
    record_.label = label;
    record_.degree.assign(log_v_ + 1, 0);
    if (capture_ != nullptr) capture_->steps.emplace_back(label);
  }

  void end_superstep() {
    acc_.finalize_into(record_);
    emit_record();
    in_superstep_ = false;
  }

  /// Out of line (backend.cpp): append record_ to the streaming writer when
  /// one is attached, to the in-memory trace otherwise.
  void emit_record();

  /// Cold path of VpRef's send check: decide which invariant broke. The
  /// fast path pre-verified `dst >= v_ || cluster breach`, so exactly one
  /// of the two throws fires.
  [[noreturn]] void fail_send(std::uint64_t src, std::uint64_t dst) const {
    if (dst >= v_) {
      throw std::out_of_range("CostBackend: destination VP out of range");
    }
    throw ClusterViolation(
        "CostBackend: message leaves the sender's " + std::to_string(label_) +
        "-cluster (src=" + std::to_string(src) +
        ", dst=" + std::to_string(dst) + ")");
  }

  unsigned log_v_;
  std::uint64_t v_;
  DegreeAccumulator acc_;
  Trace trace_;
  Schedule* capture_ = nullptr;
  TraceWriter* stream_ = nullptr;
  bool in_superstep_ = false;
  unsigned label_ = 0;
  unsigned breach_shift_ = 0;  ///< log_v - label of the open superstep
  SuperstepRecord record_;
};

/// A CostBackend that additionally captures the program's communication
/// pattern as a Schedule. schedule().replay_trace() must reproduce trace()
/// bit-for-bit (pinned by tests/bsp/test_backend.cpp).
class RecordBackend : public CostBackend {
 public:
  explicit RecordBackend(std::uint64_t v) : CostBackend(v) {
    schedule_.log_v = log_v();
    set_capture(&schedule_);
  }

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }

 private:
  Schedule schedule_;
};

/// Run `program` (a callable taking `auto& backend`) on a machine of v VPs
/// under the selected backend and return the recorded trace. The record
/// backend returns the trace re-derived from its Schedule, so every
/// `--backend record` run exercises the record -> replay path end to end.
template <typename Payload, typename ProgramFn>
[[nodiscard]] Trace run_for_trace(std::uint64_t v, const RunOptions& options,
                                  ProgramFn&& program) {
  switch (options.backend) {
    case BackendKind::kCost: {
      CostBackend backend(v);
      program(backend);
      return backend.trace();
    }
    case BackendKind::kRecord: {
      RecordBackend backend(v);
      program(backend);
      if (options.capture != nullptr) *options.capture = backend.schedule();
      return backend.schedule().replay_trace();
    }
    case BackendKind::kAnalytic:
      // Only the registry layer can answer analytically: it knows the
      // kernel's closed form and input-independence flag. A bare program
      // reaching this point is a plumbing error, not a user error.
      throw std::invalid_argument(
          "run_for_trace: the analytic backend is dispatched by the "
          "algorithm registry (core/analytic.hpp), not by run_for_trace");
    case BackendKind::kDistributed: {
      // Type-erase the program: the shard backend is one concrete class,
      // so the fork/merge machinery lives out of line in dist/backend.cpp.
      std::vector<dist::MergedStep> merged;
      Trace trace = dist::run_distributed(
          v, options.dist, options.measure,
          options.capture != nullptr ? &merged : nullptr,
          [&program](dist::DistributedBackend& backend) { program(backend); });
      if (options.capture != nullptr) {
        Schedule schedule;
        schedule.log_v = log2_exact(v);
        for (const dist::MergedStep& step : merged) {
          ScheduleStep block(step.label);
          for (std::size_t i = 0; i < step.src.size(); ++i) {
            block.push(step.src[i], step.dst[i], step.count[i],
                       ((step.dummy_words[i >> 6] >> (i & 63)) & 1) != 0);
          }
          schedule.steps.push_back(std::move(block));
        }
        *options.capture = std::move(schedule);
      }
      return trace;
    }
    case BackendKind::kSimulate:
    default: {
      SimulateBackend<Payload> backend(v, options.policy);
      program(backend);
      return backend.trace();
    }
  }
}

}  // namespace nobl
