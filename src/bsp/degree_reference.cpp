#include "bsp/degree_reference.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace nobl {

ReferenceDegreeAccumulator::ReferenceDegreeAccumulator(unsigned log_v)
    : log_v_(log_v) {
  const unsigned folds = log_v_ + 1;
  sent_.resize(folds);
  recv_.resize(folds);
  touched_.resize(folds);
  for (unsigned j = 0; j <= log_v_; ++j) {
    sent_[j].assign(std::size_t{1} << j, 0);
    recv_[j].assign(std::size_t{1} << j, 0);
  }
}

void ReferenceDegreeAccumulator::count(std::uint64_t src, std::uint64_t dst,
                                       std::uint64_t count) {
  messages_ += count;
  if (src == dst) return;
  const std::uint64_t x = src ^ dst;
  // The endpoints share cb most-significant bits; folds with j > cb place
  // them on different processors.
  const unsigned cb = log_v_ - static_cast<unsigned>(std::bit_width(x));
  for (unsigned j = cb + 1; j <= log_v_; ++j) {
    const std::uint64_t ps = src >> (log_v_ - j);
    const std::uint64_t pd = dst >> (log_v_ - j);
    if (sent_[j][ps] == 0 && recv_[j][ps] == 0) touched_[j].push_back(ps);
    if (sent_[j][pd] == 0 && recv_[j][pd] == 0) touched_[j].push_back(pd);
    sent_[j][ps] += count;
    recv_[j][pd] += count;
  }
}

void ReferenceDegreeAccumulator::absorb(ReferenceDegreeAccumulator& other) {
  if (other.log_v_ != log_v_) {
    throw std::invalid_argument(
        "ReferenceDegreeAccumulator::absorb: fold mismatch");
  }
  messages_ += other.messages_;
  other.messages_ = 0;
  for (unsigned j = 1; j <= log_v_; ++j) {
    for (const std::uint64_t q : other.touched_[j]) {
      if (sent_[j][q] == 0 && recv_[j][q] == 0) touched_[j].push_back(q);
      sent_[j][q] += other.sent_[j][q];
      recv_[j][q] += other.recv_[j][q];
      other.sent_[j][q] = 0;
      other.recv_[j][q] = 0;
    }
    other.touched_[j].clear();
  }
}

void ReferenceDegreeAccumulator::finalize_into(SuperstepRecord& record) {
  if (record.degree.size() != static_cast<std::size_t>(log_v_) + 1) {
    throw std::invalid_argument(
        "ReferenceDegreeAccumulator::finalize_into: degree vector size "
        "mismatch");
  }
  for (unsigned j = 1; j <= log_v_; ++j) {
    std::uint64_t peak = 0;
    for (const std::uint64_t q : touched_[j]) {
      peak = std::max(peak, std::max(sent_[j][q], recv_[j][q]));
      sent_[j][q] = 0;
      recv_[j][q] = 0;
    }
    touched_[j].clear();
    record.degree[j] = peak;
  }
  record.messages = messages_;
  messages_ = 0;
}

}  // namespace nobl
