// Cost models: the evaluation model M(p, σ) and the execution machine model
// D-BSP(p, g⃗, ℓ⃗) as pure functions of a recorded trace.
//
//   H_A(n, p, σ)   = Σ_{i < log p} ( F^i_A(n, p) + S^i_A(n) · σ )     (Eq. 1)
//   D_A(n, p, g⃗, ℓ⃗) = Σ_{i < log p} ( F^i_A(n, p) · g_i + S^i_A(n) · ℓ_i ) (Eq. 2)
//
// The evaluation model is the BSP with g = 1 and L = σ; the execution model
// is the D-BSP of de la Torre & Kruskal (1996) / Bilardi et al. (2007a).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bsp/trace.hpp"

namespace nobl {

/// D-BSP machine parameters: per-level inverse bandwidth g_i and latency ℓ_i,
/// for clusters at levels i = 0 .. log p - 1 (level 0 = whole machine).
struct DbspParams {
  std::string name;       ///< human-readable topology label
  std::vector<double> g;  ///< size log p; g_0 is the whole machine's gap
  std::vector<double> ell;

  [[nodiscard]] unsigned log_p() const noexcept {
    return static_cast<unsigned>(g.size());
  }
  [[nodiscard]] std::uint64_t p() const noexcept {
    return std::uint64_t{1} << log_p();
  }

  /// Throws std::invalid_argument unless ell.size() == g.size(). Called by
  /// every accessor that indexes both vectors in lockstep.
  void validate() const;

  /// Theorem 3.4's structural hypotheses: g_i and ℓ_i/g_i non-increasing.
  /// Throws std::invalid_argument on a g/ell size mismatch.
  [[nodiscard]] bool monotone() const;

  /// max_i ℓ_i / g_i — the quantity bounded by the theorem's σ^M condition.
  /// Throws std::invalid_argument on a g/ell size mismatch.
  [[nodiscard]] double max_ell_over_g() const;
};

// The cost functions are templates over any TraceLike — a type exposing
// Trace's cumulative-query surface (log_v / S / F / total_F / total_S).
// Definitions live in cost.cpp with explicit instantiations for the two
// providers: the in-memory Trace and the mmap-backed TraceReader
// (bsp/trace_store.hpp), so certification runs directly off a binary trace
// file without materializing it.

/// Communication complexity on M(2^log_p, σ), Eq. (1).
template <typename TraceLike>
[[nodiscard]] double communication_complexity(const TraceLike& trace,
                                              unsigned log_p, double sigma);

/// Communication time on a D-BSP, Eq. (2). params.log_p() must not exceed
/// trace.log_v().
template <typename TraceLike>
[[nodiscard]] double communication_time(const TraceLike& trace,
                                        const DbspParams& params);

/// Per-level additive contributions to Eq. (2): out[i] = F^i g_i + S^i ℓ_i.
template <typename TraceLike>
[[nodiscard]] std::vector<double> communication_time_by_level(
    const TraceLike& trace, const DbspParams& params);

}  // namespace nobl
