// Program-IR optimizer: pattern classification and superstep fusion over
// recorded Schedules (bsp/backend.hpp).
//
// A Schedule is the Program IR made first-class: per superstep, the (src,
// dst, count, dummy) events in execution order. Replaying it through a
// DegreeAccumulator costs O(events); but the degree vector of a superstep
// is a *static property of its communication pattern* (the paper's central
// claim), and the patterns our kernels emit are overwhelmingly regular.
// optimize_schedule() classifies each recorded superstep:
//
//   kDense — every VP sends one unit message to every VP (self included):
//     h(2^j) = (v/2^j) · (v − v/2^j), computed in O(log v) instead of
//     accumulating v² sends.
//   kShift — a constant-XOR permutation (every VP sends exactly one unit
//     message to id ^ D): h(2^j) = v/2^j on the folds the XOR crosses.
//   kTree — a uniform pairwise exchange (all events share one nonzero XOR
//     D, and at the coarsest crossing fold every cluster holds at most one
//     sender and one receiver): h = 1 on every crossing fold. This is the
//     shape of reduction/broadcast/scan rounds.
//   kIrregular — anything else; events are retained and replayed through
//     the reference DegreeAccumulator path.
//
// Classified supersteps carry their SuperstepRecord precomputed, so
// OptimizedSchedule::replay_trace() is O(supersteps · log v) for fully
// regular programs — the "vectorized bulk accounting" the certify sweeps
// and the analytic memo cache (core/analytic.hpp) replay per query.
// Fusion: consecutive supersteps with identical label and event streams
// share one record computation (and, for irregular steps, one accumulator
// pass at replay time).
//
// Soundness contract: replay_trace() is bit-identical to
// Schedule::replay_trace() on every schedule — classification may miss
// (falling back to kIrregular) but never misaccount. Pinned by
// tests/bsp/test_ir_opt.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bsp/backend.hpp"
#include "bsp/trace.hpp"

namespace nobl {

/// Communication-pattern class of one recorded superstep.
enum class StepPattern : std::uint8_t { kDense, kShift, kTree, kIrregular };

/// "dense" | "shift" | "tree" | "irregular".
[[nodiscard]] std::string to_string(StepPattern pattern);

/// One optimized superstep. Classified steps (pattern != kIrregular) carry
/// their finalized record and drop their events; irregular steps keep the
/// columnar event block for reference replay. A fused step reuses the
/// materialized record of its (identical) predecessor.
struct OptimizedStep {
  unsigned label = 0;
  StepPattern pattern = StepPattern::kIrregular;
  bool fused_with_previous = false;
  SuperstepRecord record;  ///< precomputed unless irregular/fused
  ScheduleStep events;     ///< retained only for irregular steps
};

/// Classification census of an optimized schedule.
struct OptimizeStats {
  std::size_t dense = 0;
  std::size_t shift = 0;
  std::size_t tree = 0;
  std::size_t irregular = 0;
  std::size_t fused = 0;            ///< steps sharing a predecessor's record
  std::size_t events_total = 0;     ///< events in the source schedule
  std::size_t events_retained = 0;  ///< events still replayed per-message
};

/// The optimized Program IR: same superstep sequence, bulk accounting.
struct OptimizedSchedule {
  unsigned log_v = 0;
  std::size_t source_events = 0;  ///< events in the schedule the pass consumed
  std::vector<OptimizedStep> steps;

  /// Re-derive the trace. Bit-identical to Schedule::replay_trace() on the
  /// source schedule; O(log v) per classified or fused superstep.
  [[nodiscard]] Trace replay_trace() const;

  [[nodiscard]] OptimizeStats stats() const;
};

/// Classify one recorded superstep (exposed for tests and benches).
[[nodiscard]] StepPattern classify_step(const ScheduleStep& step,
                                        unsigned log_v);

/// Run the full pass: classify every superstep, precompute records for the
/// regular ones, fuse identical consecutive steps. Throws
/// std::invalid_argument on out-of-range superstep labels (same contract as
/// Schedule::replay_trace).
[[nodiscard]] OptimizedSchedule optimize_schedule(const Schedule& schedule);

}  // namespace nobl
