// Communication traces: the bridge between the three models of the paper.
//
// An algorithm executes once, at full granularity, on the specification model
// M(v). The trace records, for every superstep s, its label i and its degree
// h^s(n, 2^j) under folding onto every machine size 2^j (Section 2). All the
// paper's metrics are then pure functions of the trace:
//
//   S^i(n)        — number of i-supersteps,
//   F^i(n, 2^j)   — cumulative degree of i-supersteps at fold 2^j,
//   H_A(n, p, σ)  — communication complexity, Eq. (1),
//   D_A(n,p,g,ℓ)  — communication time, Eq. (2)  (see bsp/cost.hpp).
//
// Degree convention: h = max over processors of max(#messages sent, #messages
// received), counting only messages whose endpoints fold onto *different*
// processors (messages between VPs folded onto the same processor become
// local memory traffic; cf. the folding discussion before Lemma 3.1).
//
// Because the metric sweeps (wiseness α, fullness γ, certify_optimality, the
// bench tables) evaluate S/F-style sums inside nested fold × σ loops, Trace
// memoizes per-label cumulative tables so every accessor answers in O(1)
// after an O(supersteps · log v) build; see the cache notes on Trace below.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bits.hpp"

namespace nobl {

/// Record of a single executed superstep.
struct SuperstepRecord {
  unsigned label = 0;  ///< i of the i-superstep, 0 <= i < log v
  /// degree[j] = h^s(n, 2^j) for 0 <= j <= log v. degree[0] == 0 always
  /// (a single processor exchanges no messages with itself).
  std::vector<std::uint64_t> degree;
  std::uint64_t messages = 0;  ///< total VP-to-VP messages (incl. dummies)
};

/// Per-fold degree bookkeeping for one executed superstep.
///
/// The engine owns one accumulator per worker lane: counting a message only
/// touches the lane of the VP that sent it, so superstep bodies never contend
/// on the counters. At the closing sync the lanes are folded into lane 0
/// (plain sums — commutative, hence independent of worker scheduling) and
/// finalized into the SuperstepRecord's degree vector (max over processors of
/// max(sent, received) at every fold 2^j). The sequential engine is the
/// one-lane special case, so both engines share one code path and produce
/// bit-identical records by construction.
///
/// Representation. A message src -> dst whose endpoints share exactly cb
/// most-significant index bits crosses precisely the folds 2^j with j > cb,
/// and at every such fold the sender's (receiver's) processor is the cluster
/// containing src (dst). count() therefore buckets the message once, by its
/// finest-fold endpoints and crossing level — sent_fine[src][cb] and
/// recv_fine[dst][cb] — in O(1), instead of walking all log v folds.
/// finalize_into() recovers h(2^j) for every fold at the closing sync with a
/// prefix over crossing levels per touched VP followed by a bottom-up cluster
/// reduction per fold: O(t · log v) for t touched VPs, independent of the
/// number of messages counted. The historical fold-per-message implementation
/// is retained as ReferenceDegreeAccumulator (bsp/degree_reference.hpp) and
/// checked against this one by tests/bsp/test_degree_differential.cpp.
class DegreeAccumulator {
 public:
  DegreeAccumulator() = default;
  explicit DegreeAccumulator(unsigned log_v);

  /// Account `count` unit messages src -> dst at every fold that separates
  /// the endpoints. Self-messages only contribute to the message total.
  /// O(1) per call (the per-fold work is deferred to finalize_into).
  void count(std::uint64_t src, std::uint64_t dst, std::uint64_t count) {
    messages_ += count;
    if (src == dst) return;
    if (active_.empty()) allocate_lanes();
    // The endpoints share cb most-significant bits; folds with j > cb place
    // them on different processors.
    const unsigned cb =
        log_v_ - static_cast<unsigned>(std::bit_width(src ^ dst));
    touch(src);
    touch(dst);
    sent_fine_[lane(cb) + src] += count;
    recv_fine_[lane(cb) + dst] += count;
  }

  /// Pre-size the fine lanes so the split hot path below may skip the lazy
  /// allocation check. Idempotent; called once per superstep by drivers
  /// that know their lane is used (the sequential counting backend).
  void ensure_lanes() {
    if (active_.empty()) allocate_lanes();
  }

  /// Split hot path (bsp/backend.hpp): the receive half of count() for one
  /// message src -> dst with crossing level cb, where the caller batches
  /// the send half per source VP and flushes it via flush_sent(). Requires
  /// ensure_lanes(); self-messages must not be routed here. The final
  /// accumulator state is bit-identical to per-message count() calls.
  void count_recv(std::uint64_t dst, unsigned cb, std::uint64_t count) {
    touch(dst);
    recv_fine_[lane(cb) + dst] += count;
  }

  /// Raw lane access for drivers that inline the receive half (require
  /// ensure_lanes(); see CostBackend::VpRef). The caller owns the contract
  /// count_recv() implements: flag active_data()[r] and note_touched(r) on
  /// the first touch of r, then bump recv_data()[(cb << log_v) + r].
  [[nodiscard]] std::uint8_t* active_data() noexcept { return active_.data(); }
  [[nodiscard]] std::uint64_t* recv_data() noexcept {
    return recv_fine_.data();
  }
  void note_touched(std::uint64_t r) { touched_.push_back(r); }

  /// Flush a source VP's batched send half: for every set bit cb of
  /// `dirty`, `sent[cb]` messages with crossing level cb were sent by
  /// `src`; `messages` is the VP's total (including self-traffic and
  /// dummies). Requires ensure_lanes() when dirty != 0.
  void flush_sent(std::uint64_t src, std::uint64_t dirty,
                  const std::uint64_t* sent, std::uint64_t messages) {
    messages_ += messages;
    if (dirty == 0) return;
    touch(src);
    while (dirty != 0) {
      const auto cb = static_cast<unsigned>(std::countr_zero(dirty));
      dirty &= dirty - 1;
      sent_fine_[lane(cb) + src] += sent[cb];
    }
  }

  /// Fold `other` into this accumulator, resetting `other` for reuse.
  /// O(t · log v) for t VPs touched in `other`.
  void absorb(DegreeAccumulator& other);

  /// Write degree[j] = h(2^j) for every j >= 1 and the message total into
  /// `record`, then reset this accumulator for the next superstep.
  /// `record.degree` must be pre-sized to log_v + 1 with degree[0] == 0.
  void finalize_into(SuperstepRecord& record);

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

 private:
  void touch(std::uint64_t r) {
    if (!active_[r]) {
      active_[r] = 1;
      touched_.push_back(r);
    }
  }

  /// Cold path of count(): size the fine lanes on the first real message, so
  /// lanes that only ever see self-traffic (or none) stay allocation-free —
  /// the parallel engine constructs one accumulator per worker.
  void allocate_lanes();

  /// Start of crossing level cb's row in the fine lanes. The layout is
  /// cb-major — fine[(cb << log_v) + r] — so the hot-path index is a shift
  /// and an add (v is a power of two; r-major indexing would multiply by
  /// log_v), and the per-fold reduction in finalize_into reads each row
  /// contiguously.
  [[nodiscard]] std::size_t lane(unsigned cb) const noexcept {
    return static_cast<std::size_t>(cb) << log_v_;
  }

  unsigned log_v_ = 0;
  std::uint64_t messages_ = 0;
  // sent_fine_[lane(cb) + r] / recv_fine_[lane(cb) + r]: messages VP r
  // sent/received with crossing level cb (0 <= cb < log_v). active_ flags and
  // touched_ list the VPs with nonzero lanes so finalize/reset cost scales
  // with the active set, not with v. All sized lazily by allocate_lanes().
  std::vector<std::uint64_t> sent_fine_;
  std::vector<std::uint64_t> recv_fine_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint64_t> touched_;
  // Scratch for finalize_into's per-fold cluster reduction, allocated
  // lazily on the first finalize (absorb-source lanes never need it).
  std::vector<std::uint64_t> cluster_sent_;
  std::vector<std::uint64_t> cluster_recv_;
  std::vector<std::uint8_t> cluster_active_;
  std::vector<std::uint64_t> cluster_touched_;
};

/// The recorded superstep sequence plus memoized cumulative tables.
///
/// Caching: the per-label sums backing S/F/total_F/partial_F/total_S and
/// peak_degree are built lazily on first query and invalidated by append()
/// and extend(), so interleaved record/query phases stay correct and a pure
/// query phase pays one O(supersteps · log v) build for O(1) lookups
/// thereafter. The lazy build mutates cache state under const: concurrent
/// first queries from multiple threads are not synchronized (the engine only
/// appends single-threaded at the sync and analyses run after the fact).
class Trace {
 public:
  Trace() = default;
  explicit Trace(unsigned log_v) : log_v_(log_v) {}

  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }
  [[nodiscard]] std::uint64_t v() const noexcept {
    return std::uint64_t{1} << log_v_;
  }
  [[nodiscard]] std::size_t supersteps() const noexcept {
    return steps_.size();
  }
  [[nodiscard]] const std::vector<SuperstepRecord>& steps() const noexcept {
    return steps_;
  }

  /// Number of representable superstep labels: valid labels are
  /// 0 .. label_bound() - 1 (M(1) still has label 0 for local steps).
  [[nodiscard]] unsigned label_bound() const noexcept {
    return log_v_ < 1 ? 1 : log_v_;
  }

  void append(SuperstepRecord record);

  /// S^i(n): the number of i-supersteps.
  [[nodiscard]] std::uint64_t S(unsigned label) const;

  /// F^i(n, 2^log_p): cumulative degree of i-supersteps at fold 2^log_p.
  [[nodiscard]] std::uint64_t F(unsigned label, unsigned log_p) const;

  /// Σ_{i < log_p} F^i(n, 2^log_p) — the quantity in Lemma 3.1 / Def. 3.2.
  [[nodiscard]] std::uint64_t total_F(unsigned log_p) const;

  /// Σ_{i < label_bound} F^i(n, 2^log_p): cumulative degree at fold 2^log_p
  /// restricted to supersteps with label below label_bound (the mixed-index
  /// sums appearing on the right-hand sides of Lemma 3.1 and Def. 3.2).
  [[nodiscard]] std::uint64_t partial_F(unsigned label_bound,
                                        unsigned log_p) const;

  /// Σ_{i < log_p} S^i(n) — the superstep count relevant at fold 2^log_p
  /// (supersteps with label >= log p become local computation).
  [[nodiscard]] std::uint64_t total_S(unsigned log_p) const;

  /// max over i-supersteps of h(2^log_p): the largest single-superstep degree
  /// of label `label` at the given fold (0 if the label never occurs).
  [[nodiscard]] std::uint64_t peak_degree(unsigned label,
                                          unsigned log_p) const;

  /// Total messages routed (including dummy messages), across all supersteps.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }

  /// Largest superstep label present.
  [[nodiscard]] unsigned max_label() const noexcept { return max_label_; }

  /// Concatenate another trace after this one (used to compose phases of an
  /// algorithm that is driven in separate machine runs).
  void extend(const Trace& other);

 private:
  void check_log_p(unsigned log_p) const {
    if (log_p > log_v_) {
      throw std::out_of_range("Trace: fold larger than specification model");
    }
  }

  /// (Re)build the cumulative tables if invalidated. Const because every
  /// accessor is a pure function of steps_; see the class comment for the
  /// concurrency caveat.
  void ensure_cache() const;

  unsigned log_v_ = 0;
  std::vector<SuperstepRecord> steps_;
  std::uint64_t total_messages_ = 0;  ///< maintained eagerly on append/extend
  unsigned max_label_ = 0;            ///< maintained eagerly on append/extend

  // Memoized tables, all flattened with stride log_v_ + 1 over folds:
  //   label_F_[i][j]  = Σ over i-supersteps of degree[j]
  //   label_peak_[i][j] = max over i-supersteps of degree[j]
  //   label_S_[i]     = S^i
  //   cum_F_[L][j]    = Σ_{i < L} label_F_[i][j]   (L = 0 .. label_bound())
  //   cum_S_[L]       = Σ_{i < L} label_S_[i]
  mutable bool cache_valid_ = false;
  mutable std::vector<std::uint64_t> label_F_;
  mutable std::vector<std::uint64_t> label_peak_;
  mutable std::vector<std::uint64_t> label_S_;
  mutable std::vector<std::uint64_t> cum_F_;
  mutable std::vector<std::uint64_t> cum_S_;
};

}  // namespace nobl
