// Communication traces: the bridge between the three models of the paper.
//
// An algorithm executes once, at full granularity, on the specification model
// M(v). The trace records, for every superstep s, its label i and its degree
// h^s(n, 2^j) under folding onto every machine size 2^j (Section 2). All the
// paper's metrics are then pure functions of the trace:
//
//   S^i(n)        — number of i-supersteps,
//   F^i(n, 2^j)   — cumulative degree of i-supersteps at fold 2^j,
//   H_A(n, p, σ)  — communication complexity, Eq. (1),
//   D_A(n,p,g,ℓ)  — communication time, Eq. (2)  (see bsp/cost.hpp).
//
// Degree convention: h = max over processors of max(#messages sent, #messages
// received), counting only messages whose endpoints fold onto *different*
// processors (messages between VPs folded onto the same processor become
// local memory traffic; cf. the folding discussion before Lemma 3.1).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bits.hpp"

namespace nobl {

/// Record of a single executed superstep.
struct SuperstepRecord {
  unsigned label = 0;  ///< i of the i-superstep, 0 <= i < log v
  /// degree[j] = h^s(n, 2^j) for 0 <= j <= log v. degree[0] == 0 always
  /// (a single processor exchanges no messages with itself).
  std::vector<std::uint64_t> degree;
  std::uint64_t messages = 0;  ///< total VP-to-VP messages (incl. dummies)
};

/// Per-fold degree bookkeeping for one executed superstep.
///
/// The engine owns one accumulator per worker lane: counting a message only
/// touches the lane of the VP that sent it, so superstep bodies never contend
/// on the counters. At the closing sync the lanes are folded into lane 0
/// (plain sums — commutative, hence independent of worker scheduling) and
/// finalized into the SuperstepRecord's degree vector (max over processors of
/// max(sent, received) at every fold 2^j). The sequential engine is the
/// one-lane special case, so both engines share one code path and produce
/// bit-identical records by construction.
class DegreeAccumulator {
 public:
  DegreeAccumulator() = default;
  explicit DegreeAccumulator(unsigned log_v);

  /// Account `count` unit messages src -> dst at every fold that separates
  /// the endpoints. Self-messages only contribute to the message total.
  void count(std::uint64_t src, std::uint64_t dst, std::uint64_t count);

  /// Fold `other` into this accumulator, resetting `other` for reuse.
  void absorb(DegreeAccumulator& other);

  /// Write degree[j] = h(2^j) and the message total into `record`, then
  /// reset this accumulator for the next superstep. `record.degree` must be
  /// pre-sized to log_v + 1.
  void finalize_into(SuperstepRecord& record);

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

 private:
  unsigned log_v_ = 0;
  std::uint64_t messages_ = 0;
  // sent_[j][q] / recv_[j][q]: messages processor q sends/receives at fold
  // 2^j; touched_[j] lists the nonzero q so reset is O(#touched).
  std::vector<std::vector<std::uint64_t>> sent_;
  std::vector<std::vector<std::uint64_t>> recv_;
  std::vector<std::vector<std::uint64_t>> touched_;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(unsigned log_v) : log_v_(log_v) {}

  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }
  [[nodiscard]] std::uint64_t v() const noexcept {
    return std::uint64_t{1} << log_v_;
  }
  [[nodiscard]] std::size_t supersteps() const noexcept {
    return steps_.size();
  }
  [[nodiscard]] const std::vector<SuperstepRecord>& steps() const noexcept {
    return steps_;
  }

  void append(SuperstepRecord record);

  /// S^i(n): the number of i-supersteps.
  [[nodiscard]] std::uint64_t S(unsigned label) const;

  /// F^i(n, 2^log_p): cumulative degree of i-supersteps at fold 2^log_p.
  [[nodiscard]] std::uint64_t F(unsigned label, unsigned log_p) const;

  /// Σ_{i < log_p} F^i(n, 2^log_p) — the quantity in Lemma 3.1 / Def. 3.2.
  [[nodiscard]] std::uint64_t total_F(unsigned log_p) const;

  /// Σ_{i < label_bound} F^i(n, 2^log_p): cumulative degree at fold 2^log_p
  /// restricted to supersteps with label below label_bound (the mixed-index
  /// sums appearing on the right-hand sides of Lemma 3.1 and Def. 3.2).
  [[nodiscard]] std::uint64_t partial_F(unsigned label_bound,
                                        unsigned log_p) const;

  /// Σ_{i < log_p} S^i(n) — the superstep count relevant at fold 2^log_p
  /// (supersteps with label >= log p become local computation).
  [[nodiscard]] std::uint64_t total_S(unsigned log_p) const;

  /// Total messages routed (including dummy messages), across all supersteps.
  [[nodiscard]] std::uint64_t total_messages() const;

  /// Largest superstep label present.
  [[nodiscard]] unsigned max_label() const;

  /// Concatenate another trace after this one (used to compose phases of an
  /// algorithm that is driven in separate machine runs).
  void extend(const Trace& other);

 private:
  void check_log_p(unsigned log_p) const {
    if (log_p > log_v_) {
      throw std::out_of_range("Trace: fold larger than specification model");
    }
  }

  unsigned log_v_ = 0;
  std::vector<SuperstepRecord> steps_;
};

}  // namespace nobl
