// Trace serialization: persist a recorded communication trace so a run on
// the specification model can be archived, diffed, or re-analyzed
// (H/D/wiseness are pure functions of the trace) without re-executing the
// algorithm. Two formats share one in-memory Trace:
//
//   CSV — the human surface: header line `log_v,<value>`, then one line per
//     superstep: label,messages,degree_0,degree_1,...,degree_logv
//   binary — the compact columnar block format of bsp/trace_store.hpp
//     (delta+varint degree columns, per-block checksums); the two are
//     pinned against each other by a round-trip differential test over
//     every golden fixture and registry kernel.
#pragma once

#include <iosfwd>

#include "bsp/trace.hpp"

namespace nobl {

/// Serialize a trace as CSV. Deterministic, line-oriented, self-describing.
void write_trace_csv(std::ostream& os, const Trace& trace);

/// Parse a trace written by write_trace_csv. Throws std::invalid_argument on
/// malformed input (wrong field counts, non-numeric fields, numeric fields
/// exceeding 64 bits, label/degree constraints violated — the same
/// validation Trace::append applies); every parse error carries the
/// offending line and column.
[[nodiscard]] Trace read_trace_csv(std::istream& is);

/// Serialize a trace in the binary columnar block format (streams through
/// a TraceWriter; O(log v) live state regardless of trace length).
void write_trace_bin(std::ostream& os, const Trace& trace);

/// Parse a binary trace image. Throws std::invalid_argument on any format
/// violation, carrying the byte offset. For files, prefer constructing a
/// TraceReader directly — it mmaps instead of slurping.
[[nodiscard]] Trace read_trace_bin(std::istream& is);

}  // namespace nobl
