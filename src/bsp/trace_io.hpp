// Trace serialization: persist a recorded communication trace as CSV so a
// run on the specification model can be archived, diffed, or re-analyzed
// (H/D/wiseness are pure functions of the trace) without re-executing the
// algorithm.
//
// Format: header line `log_v,<value>`, then one line per superstep:
//   label,messages,degree_0,degree_1,...,degree_logv
#pragma once

#include <iosfwd>

#include "bsp/trace.hpp"

namespace nobl {

/// Serialize a trace. Deterministic, line-oriented, self-describing.
void write_trace_csv(std::ostream& os, const Trace& trace);

/// Parse a trace written by write_trace_csv. Throws std::invalid_argument on
/// malformed input (wrong field counts, non-numeric fields, numeric fields
/// exceeding 64 bits, label/degree constraints violated — the same
/// validation Trace::append applies).
[[nodiscard]] Trace read_trace_csv(std::istream& is);

}  // namespace nobl
