#include "bsp/execution.hpp"

#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace nobl {

ExecutionPolicy ExecutionPolicy::parallel(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  return ExecutionPolicy{Mode::kParallel, num_threads};
}

std::string to_string(const ExecutionPolicy& policy) {
  if (policy.mode == ExecutionPolicy::Mode::kSequential) return "seq";
  return "par:" + std::to_string(policy.num_threads);
}

ExecutionPolicy execution_policy_from_env() {
  const char* engine = std::getenv("NOBL_ENGINE");
  if (engine == nullptr) return ExecutionPolicy::sequential();
  const std::string name(engine);
  if (name.empty() || name == "seq" || name == "sequential") {
    return ExecutionPolicy::sequential();
  }
  if (name != "par" && name != "parallel") {
    throw std::invalid_argument("NOBL_ENGINE: expected seq|sequential|par|parallel, got \"" +
                                name + "\"");
  }
  unsigned threads = 0;
  if (const char* env_threads = std::getenv("NOBL_THREADS")) {
    const long parsed = std::strtol(env_threads, nullptr, 10);
    if (parsed < 1) {
      throw std::invalid_argument("NOBL_THREADS: expected a positive integer");
    }
    threads = static_cast<unsigned>(parsed);
  }
  return ExecutionPolicy::parallel(threads);
}

}  // namespace nobl
