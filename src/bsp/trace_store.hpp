// Binary columnar trace store: the one block layout shared by backends,
// goldens, the CLI and the analytic cache.
//
// The paper makes traces the central artifact — H, D, wiseness and
// optimality are pure functions of the per-superstep fold-degree trace
// (Eq. 1–2) — so the store is built around exactly that shape: one block
// per superstep carrying the label, the message total, and the fold-degree
// column h(2^j) for j = 1..log v. Degrees are mostly regular across
// consecutive supersteps (tree rounds repeat, dense phases plateau), so
// each column is delta-encoded against the previous block and the deltas
// are zigzag/varint packed; dense kernels land well under the CSV size.
//
// File layout (version 1; see docs/SCHEMAS.md for the normative spec):
//
//   header   magic "NBLT" · u16 version · u16 log_v · u32 CRC-32 of the 8
//            preceding bytes                                    (12 bytes)
//   block    varint label · varint messages · zigzag-varint
//            (degree[j] − prev_degree[j]) for j = 1..log_v ·
//            u32 CRC-32 of the block payload            (one per superstep)
//   footer   0xFF sentinel · u64 supersteps · u64 total messages ·
//            u32 CRC-32 of the 17 preceding bytes               (21 bytes)
//
// degree[0] == 0 always (one processor exchanges nothing with itself) and
// is never stored. The 0xFF sentinel cannot open a valid block: a label
// varint below 64 is a single byte < 0x40. Every decoder error — bad
// magic/version, a checksum mismatch, a truncation anywhere (including at
// a block boundary: the footer is mandatory) — throws std::invalid_argument
// carrying the byte offset.
//
// Two access paths around the layout:
//
//   TraceWriter — streaming, bounded by O(log v) live state (the previous
//     block's degree column plus an encode scratch). CostBackend /
//     RecordBackend flush finalized supersteps into it one by one
//     (CostBackend::stream_to), so recording never materializes the trace.
//
//   TraceReader — mmap-backed (or over an owned buffer), exposing the same
//     cumulative-query surface as Trace (S / F / total_F / partial_F /
//     total_S / peak_degree, all O(1) after one indexing pass) without
//     materializing the file: the index is O(log² v) and blocks are decoded
//     one at a time (peak_live_blocks() == 1, asserted in tests).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bsp/trace.hpp"

namespace nobl {

/// First bytes of every binary trace file: 'N' 'B' 'L' 'T'.
inline constexpr unsigned char kTraceBinMagic[4] = {'N', 'B', 'L', 'T'};
/// Current (and only) format version.
inline constexpr std::uint16_t kTraceBinVersion = 1;
/// Canonical file extension for binary traces (golden twins, exports).
inline constexpr const char* kTraceBinExtension = ".nbt";

/// Streaming writer: append superstep records one by one, then finish().
/// Live state is O(log v) — the previous degree column, the running
/// totals, and a per-block encode scratch — independent of the number of
/// supersteps written, so a recording backend can stream a trace that
/// never fits in RAM.
class TraceWriter {
 public:
  /// Writes the header immediately. log_v <= 63.
  TraceWriter(std::ostream& os, unsigned log_v);

  /// Finishes (writes the footer) if finish() was not called; any stream
  /// error surfaces through the stream's state, never a throw.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Encode one superstep block. Validates the same invariants as
  /// Trace::append (degree size log_v + 1, degree[0] == 0, label range);
  /// throws std::invalid_argument on violation, std::logic_error after
  /// finish().
  void append(const SuperstepRecord& record);

  /// Write the footer. Idempotent; append() afterwards throws.
  void finish();

  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }
  [[nodiscard]] std::uint64_t supersteps() const noexcept {
    return supersteps_;
  }
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }
  /// Bytes emitted so far (header + blocks [+ footer after finish()]).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  /// Live encoder state in bytes (previous column + scratch): the O(log v)
  /// residency bound the streaming tests assert.
  [[nodiscard]] std::size_t resident_bytes() const noexcept;

 private:
  std::ostream* os_;
  unsigned log_v_;
  bool finished_ = false;
  std::uint64_t supersteps_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> prev_degree_;  ///< previous block's column
  std::vector<unsigned char> scratch_;      ///< per-block encode buffer
};

/// Reader over a binary trace: mmap-backed when constructed from a path,
/// buffer-backed via from_bytes (tests, istream round-trips). Construction
/// runs one streaming validation+indexing pass — every checksum, the
/// footer, and all Trace::append invariants are checked up front — after
/// which the cumulative queries mirror Trace's surface at O(1) each. The
/// file itself is never materialized: for_each_step decodes one block at a
/// time (peak_live_blocks() == 1) and the index is O(log² v).
class TraceReader {
 public:
  /// Map `path` read-only and index it. Throws std::invalid_argument on
  /// open/map failure or any format violation (message carries the byte
  /// offset for decode errors).
  explicit TraceReader(const std::string& path);

  /// Index an in-memory image (takes ownership of the bytes).
  [[nodiscard]] static TraceReader from_bytes(std::string bytes);

  ~TraceReader();
  TraceReader(TraceReader&& other) noexcept;
  TraceReader& operator=(TraceReader&& other) noexcept;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }
  [[nodiscard]] std::uint64_t v() const noexcept {
    return std::uint64_t{1} << log_v_;
  }
  [[nodiscard]] unsigned label_bound() const noexcept {
    return log_v_ < 1 ? 1 : log_v_;
  }
  [[nodiscard]] std::size_t supersteps() const noexcept {
    return supersteps_;
  }
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }
  [[nodiscard]] unsigned max_label() const noexcept { return max_label_; }

  // The Trace cumulative-query surface (same semantics, same O(1) cost;
  // out-of-range folds throw std::out_of_range exactly like Trace).
  [[nodiscard]] std::uint64_t S(unsigned label) const;
  [[nodiscard]] std::uint64_t F(unsigned label, unsigned log_p) const;
  [[nodiscard]] std::uint64_t total_F(unsigned log_p) const;
  [[nodiscard]] std::uint64_t partial_F(unsigned label_bound,
                                        unsigned log_p) const;
  [[nodiscard]] std::uint64_t total_S(unsigned log_p) const;
  [[nodiscard]] std::uint64_t peak_degree(unsigned label,
                                          unsigned log_p) const;

  /// Decode block by block in file order, invoking `fn` on each record.
  /// The record buffer is reused across blocks — copy it to retain it.
  void for_each_step(
      const std::function<void(const SuperstepRecord&)>& fn) const;

  /// Convenience for small traces (the CLI convert path and differential
  /// tests): decode everything into an in-memory Trace.
  [[nodiscard]] Trace materialize() const;

  /// Size of the underlying image in bytes.
  [[nodiscard]] std::size_t file_bytes() const noexcept { return size_; }
  /// Index + decode-scratch footprint in bytes, excluding the mapping —
  /// the O(log² v) residency the streaming-certification tests bound.
  [[nodiscard]] std::size_t resident_bytes() const noexcept;
  /// Maximum number of decoded superstep blocks ever live at once across
  /// the indexing pass and every for_each_step walk (always 1: the
  /// instrumented counter behind the O(log v) streaming claim).
  [[nodiscard]] std::size_t peak_live_blocks() const noexcept {
    return peak_live_blocks_;
  }

 private:
  TraceReader() = default;

  void check_log_p(unsigned log_p) const;
  /// One streaming pass: validate header/blocks/footer, build the same
  /// per-label cumulative tables Trace memoizes.
  void build_index();
  void unmap() noexcept;

  // Image: exactly one of owned_ (buffer-backed) or map_ (mmap) holds it.
  std::string owned_;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;

  unsigned log_v_ = 0;
  std::size_t supersteps_ = 0;
  std::uint64_t total_messages_ = 0;
  unsigned max_label_ = 0;
  mutable std::size_t peak_live_blocks_ = 0;

  // Cumulative tables, identical layout to Trace's memo (stride log_v + 1
  // over folds).
  std::vector<std::uint64_t> label_F_;
  std::vector<std::uint64_t> label_peak_;
  std::vector<std::uint64_t> label_S_;
  std::vector<std::uint64_t> cum_F_;
  std::vector<std::uint64_t> cum_S_;
};

/// True iff `bytes` opens with the binary-trace magic — the sniff the CLI
/// uses to route a file to the right parser.
[[nodiscard]] bool looks_like_trace_bin(const std::string& bytes);

}  // namespace nobl
