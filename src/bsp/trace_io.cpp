#include "bsp/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace nobl {

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os << "log_v," << trace.log_v() << '\n';
  for (const auto& s : trace.steps()) {
    os << s.label << ',' << s.messages;
    for (const auto d : s.degree) os << ',' << d;
    os << '\n';
  }
}

namespace {

std::vector<std::uint64_t> parse_fields(const std::string& line) {
  std::vector<std::uint64_t> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    const std::string token =
        line.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos) {
      throw std::invalid_argument("read_trace_csv: non-numeric field '" +
                                  token + "'");
    }
    try {
      fields.push_back(std::stoull(token));
    } catch (const std::out_of_range&) {
      // An all-digit token exceeding 64 bits; keep the documented contract
      // of throwing invalid_argument on any malformed input.
      throw std::invalid_argument("read_trace_csv: field overflows 64 bits '" +
                                  token + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return fields;
}

}  // namespace

Trace read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("read_trace_csv: empty input");
  }
  if (line.rfind("log_v,", 0) != 0) {
    throw std::invalid_argument("read_trace_csv: missing log_v header");
  }
  const auto header = parse_fields(line.substr(6));
  if (header.size() != 1 || header[0] > 63) {
    throw std::invalid_argument("read_trace_csv: bad log_v header");
  }
  const auto log_v = static_cast<unsigned>(header[0]);
  Trace trace(log_v);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = parse_fields(line);
    if (fields.size() != static_cast<std::size_t>(log_v) + 3) {
      throw std::invalid_argument("read_trace_csv: wrong field count");
    }
    SuperstepRecord record;
    // Validate in the 64-bit domain before narrowing: a label >= 2^32 would
    // otherwise wrap in the cast and could slip past Trace::append's check.
    if (fields[0] >= trace.label_bound()) {
      throw std::invalid_argument("read_trace_csv: label out of range");
    }
    record.label = static_cast<unsigned>(fields[0]);
    record.messages = fields[1];
    record.degree.assign(fields.begin() + 2, fields.end());
    trace.append(std::move(record));  // re-validates label/degree shape
  }
  return trace;
}

}  // namespace nobl
