#include "bsp/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bsp/trace_store.hpp"

namespace nobl {

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os << "log_v," << trace.log_v() << '\n';
  for (const auto& s : trace.steps()) {
    os << s.label << ',' << s.messages;
    for (const auto d : s.degree) os << ',' << d;
    os << '\n';
  }
}

namespace {

[[noreturn]] void csv_fail(const std::string& what, std::size_t line,
                           std::size_t column) {
  throw std::invalid_argument("read_trace_csv: " + what + " at line " +
                              std::to_string(line) + ", column " +
                              std::to_string(column));
}

/// Split a 1-based line of comma-separated u64 fields. `column_base` is the
/// 1-based column of the line's first parsed character (the header value
/// starts past the "log_v," prefix). Every failure names line and column.
std::vector<std::uint64_t> parse_fields(const std::string& line,
                                        std::size_t line_no,
                                        std::size_t column_base) {
  std::vector<std::uint64_t> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    const std::string token =
        line.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const std::size_t column = column_base + pos;
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos) {
      csv_fail("non-numeric field '" + token + "'", line_no, column);
    }
    try {
      fields.push_back(std::stoull(token));
    } catch (const std::out_of_range&) {
      // An all-digit token exceeding 64 bits; keep the documented contract
      // of throwing invalid_argument on any malformed input.
      csv_fail("field overflows 64 bits '" + token + "'", line_no, column);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return fields;
}

}  // namespace

Trace read_trace_csv(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(is, line)) {
    csv_fail("empty input", 1, 1);
  }
  if (line.rfind("log_v,", 0) != 0) {
    csv_fail("missing log_v header", 1, 1);
  }
  const auto header = parse_fields(line.substr(6), 1, 7);
  if (header.size() != 1 || header[0] > 63) {
    csv_fail("bad log_v header", 1, 7);
  }
  const auto log_v = static_cast<unsigned>(header[0]);
  Trace trace(log_v);
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = parse_fields(line, line_no, 1);
    if (fields.size() != static_cast<std::size_t>(log_v) + 3) {
      csv_fail("wrong field count (expected " +
                   std::to_string(log_v + 3) + ", got " +
                   std::to_string(fields.size()) + ")",
               line_no, 1);
    }
    // Validate in the 64-bit domain before narrowing: a label >= 2^32 would
    // otherwise wrap in the cast and could slip past Trace::append's check.
    if (fields[0] >= trace.label_bound()) {
      csv_fail("label " + std::to_string(fields[0]) + " out of range",
               line_no, 1);
    }
    SuperstepRecord record;
    record.label = static_cast<unsigned>(fields[0]);
    record.messages = fields[1];
    record.degree.assign(fields.begin() + 2, fields.end());
    try {
      trace.append(std::move(record));  // re-validates label/degree shape
    } catch (const std::invalid_argument& e) {
      csv_fail(e.what(), line_no, 1);
    }
  }
  return trace;
}

void write_trace_bin(std::ostream& os, const Trace& trace) {
  TraceWriter writer(os, trace.log_v());
  for (const auto& s : trace.steps()) writer.append(s);
  writer.finish();
}

Trace read_trace_bin(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return TraceReader::from_bytes(std::move(buffer).str()).materialize();
}

}  // namespace nobl
