// Static linting of recorded Schedules against the structural invariants the
// paper's cost theory relies on, plus reconciliation of measured
// communication against the registry's closed forms.
//
// A Schedule (bsp/backend.hpp) is the Program IR made first-class: the
// per-superstep (src, dst, count, dummy) event blocks. Everything the
// D-BSP folding argument assumes about a well-formed pattern is checkable
// from those events alone:
//
//   * ranges        — src, dst < v; label < label bound;
//   * containment   — every message stays inside the sender's label-cluster:
//                     (src ^ dst) >> (log v - label) == 0 (Section 2);
//   * dummy discipline — real sends record unit events, dummy bursts carry
//                     count >= 1, no zero-count events (wiseness padding is
//                     degree-only traffic, § wiseness);
//   * degree structure — at folds 2^j with j <= label every message is
//                     processor-local, so h(2^j) = 0; and across adjacent
//                     folds h(2^j) <= 2 h(2^{j+1}), because a fold-2^j
//                     processor is the union of two fold-2^{j+1} processors
//                     (max(sent, recv) at most doubles under merging);
//   * formula reconciliation — H(n, p, σ) computed from the replayed trace
//                     must equal the registry's predict:: closed form for
//                     exact-H kernels, and stay inside a fixed envelope
//                     of [lower bound, predicted] for the O(·) kernels, so
//                     silent formula drift becomes a CI failure.
//
// The degree checks take a TraceLike-independent Trace so they also apply to
// traces deserialized from the binary store (where corruption, unlike
// replay, can actually produce impossible degree vectors).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bsp/backend.hpp"
#include "bsp/trace.hpp"
#include "core/experiment.hpp"

namespace nobl::audit {

/// One violated invariant: a stable rule identifier plus a human-readable
/// locus ("step 3: ...").
struct LintIssue {
  std::string rule;
  std::string detail;
};

struct ScheduleLintReport {
  std::vector<LintIssue> issues;
  [[nodiscard]] bool clean() const noexcept { return issues.empty(); }
};

/// Event-level checks (ranges, containment, dummy discipline) plus the
/// degree-structure checks on the schedule's replayed trace.
[[nodiscard]] ScheduleLintReport lint_schedule(const Schedule& schedule);

/// Degree-structure checks alone: per-step, degree[j] == 0 for j <= label
/// and degree[j] <= 2 degree[j+1]. Valid on any trace, including ones read
/// back from the binary store.
[[nodiscard]] ScheduleLintReport lint_degree_structure(const Trace& trace);

/// Same checks on raw records that have NOT passed through Trace::append's
/// shape validation — the form in which a corrupted binary store surfaces.
/// This overload is the only one that can report "degree-shape".
[[nodiscard]] ScheduleLintReport lint_degree_structure(
    std::span<const SuperstepRecord> steps, unsigned log_v);

/// Reconcile measured H(n, p, σ) over every fold and the standard σ grid
/// against the registry's formulas. exact_h kernels must match predicted to
/// rounding; envelope kernels must satisfy
///   measured <= kEnvelopeFactor · predicted  and
///   lower_bound <= kEnvelopeFactor · measured.
[[nodiscard]] ScheduleLintReport lint_against_formulas(
    const Trace& trace, std::uint64_t n, const CostFormula& predicted,
    const CostFormula& lower_bound, bool exact_h, const std::string& name);

/// Constant-factor slack allowed between an O(·)/Ω(·) closed form and the
/// measured value before the lint calls drift. Calibrated over the audit
/// sizes of every registered kernel (tests/audit/test_kernel_verdicts.cpp
/// repins it): the worst observed ratio is ~9.5x (sort's measured H vs.
/// its predicted envelope at n = 64, p = 4, σ = 0; stencil2 sits at ~8.6x).
inline constexpr double kEnvelopeFactor = 16.0;

/// Merge: append `extra`'s issues onto `base`.
void merge_into(ScheduleLintReport& base, const ScheduleLintReport& extra);

}  // namespace nobl::audit
