#include "audit/schedule_lint.hpp"

#include <cmath>
#include <cstdint>
#include <string>

#include "bsp/cost.hpp"

namespace nobl::audit {
namespace {

std::string step_prefix(std::size_t index, unsigned label) {
  return "step " + std::to_string(index) + " (label " + std::to_string(label) +
         "): ";
}

void add(ScheduleLintReport& report, std::string rule, std::string detail) {
  report.issues.push_back(LintIssue{std::move(rule), std::move(detail)});
}

}  // namespace

void merge_into(ScheduleLintReport& base, const ScheduleLintReport& extra) {
  base.issues.insert(base.issues.end(), extra.issues.begin(),
                     extra.issues.end());
}

ScheduleLintReport lint_schedule(const Schedule& schedule) {
  ScheduleLintReport report;
  const std::uint64_t v = schedule.v();
  const unsigned log_v = schedule.log_v;
  const unsigned label_bound = log_v < 1 ? 1 : log_v;

  for (std::size_t s = 0; s < schedule.steps.size(); ++s) {
    const ScheduleStep& step = schedule.steps[s];
    const std::string where = step_prefix(s, step.label);
    if (step.label >= label_bound) {
      add(report, "label-range",
          where + "label exceeds bound " + std::to_string(label_bound - 1));
      continue;  // the containment shift below would be meaningless
    }
    const unsigned shift = log_v - step.label;
    for (std::size_t i = 0; i < step.size(); ++i) {
      const ScheduleSend event = step[i];
      if (event.src >= v || event.dst >= v) {
        add(report, "endpoint-range",
            where + "event " + std::to_string(i) + " endpoint out of range (" +
                std::to_string(event.src) + " -> " + std::to_string(event.dst) +
                ", v = " + std::to_string(v) + ")");
        continue;
      }
      if (((event.src ^ event.dst) >> shift) != 0) {
        add(report, "cluster-containment",
            where + "message " + std::to_string(event.src) + " -> " +
                std::to_string(event.dst) + " leaves the sender's " +
                std::to_string(step.label) + "-cluster");
      }
      if (event.count == 0) {
        add(report, "dummy-discipline",
            where + "event " + std::to_string(i) + " has count 0");
      } else if (!event.dummy && event.count != 1) {
        add(report, "dummy-discipline",
            where + "real send " + std::to_string(event.src) + " -> " +
                std::to_string(event.dst) + " records count " +
                std::to_string(event.count) + " (real sends are unit events)");
      }
    }
  }

  // Degree structure over the replayed trace — only meaningful once the
  // events themselves are in range.
  if (report.clean()) {
    merge_into(report, lint_degree_structure(schedule.replay_trace()));
  }
  return report;
}

ScheduleLintReport lint_degree_structure(const Trace& trace) {
  return lint_degree_structure(
      std::span<const SuperstepRecord>(trace.steps()), trace.log_v());
}

ScheduleLintReport lint_degree_structure(std::span<const SuperstepRecord> steps,
                                         const unsigned log_v) {
  ScheduleLintReport report;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const SuperstepRecord& record = steps[s];
    const std::string where = step_prefix(s, record.label);
    if (record.degree.size() != static_cast<std::size_t>(log_v) + 1) {
      add(report, "degree-shape",
          where + "degree vector has " + std::to_string(record.degree.size()) +
              " folds, expected " + std::to_string(log_v + 1));
      continue;
    }
    // Folds that do not split the sender's label-cluster see only local
    // traffic: h(2^j) = 0 for every j <= label.
    for (unsigned j = 0; j <= record.label && j <= log_v; ++j) {
      if (record.degree[j] != 0) {
        add(report, "local-fold-degree",
            where + "h(2^" + std::to_string(j) + ") = " +
                std::to_string(record.degree[j]) +
                " but folds at or above the label must be local");
      }
    }
    // Merging two fold-2^{j+1} processors into one fold-2^j processor can
    // at most double max(sent, received): h(2^j) <= 2 h(2^{j+1}).
    for (unsigned j = 1; j < log_v; ++j) {
      if (record.degree[j] > 2 * record.degree[j + 1]) {
        add(report, "degree-doubling",
            where + "h(2^" + std::to_string(j) + ") = " +
                std::to_string(record.degree[j]) + " exceeds 2 h(2^" +
                std::to_string(j + 1) +
                ") = " + std::to_string(2 * record.degree[j + 1]));
      }
    }
  }
  return report;
}

ScheduleLintReport lint_against_formulas(const Trace& trace, std::uint64_t n,
                                         const CostFormula& predicted,
                                         const CostFormula& lower_bound,
                                         bool exact_h,
                                         const std::string& name) {
  ScheduleLintReport report;
  for (unsigned log_p = 1; log_p <= trace.log_v(); ++log_p) {
    const std::uint64_t p = std::uint64_t{1} << log_p;
    for (const double sigma : sigma_grid(n, p)) {
      const double measured = communication_complexity(trace, log_p, sigma);
      const double expected = predicted(n, p, sigma);
      const double bound = lower_bound(n, p, sigma);
      const std::string cell = name + " at p = " + std::to_string(p) +
                               ", sigma = " + std::to_string(sigma);
      if (exact_h) {
        const double slack = 1e-9 * std::max(1.0, std::abs(expected));
        if (std::abs(measured - expected) > slack) {
          add(report, "exact-h-drift",
              cell + ": measured H = " + std::to_string(measured) +
                  " != predicted " + std::to_string(expected));
        }
      } else {
        if (measured > kEnvelopeFactor * expected) {
          add(report, "predicted-envelope",
              cell + ": measured H = " + std::to_string(measured) +
                  " exceeds " + std::to_string(kEnvelopeFactor) +
                  "x predicted " + std::to_string(expected));
        }
        if (bound > kEnvelopeFactor * measured) {
          add(report, "lower-bound-envelope",
              cell + ": lower bound " + std::to_string(bound) + " exceeds " +
                  std::to_string(kEnvelopeFactor) + "x measured H = " +
                  std::to_string(measured));
        }
      }
    }
  }
  return report;
}

}  // namespace nobl::audit
