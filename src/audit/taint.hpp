// Tracked values for taint-style abstract interpretation (the audit layer).
//
// Tainted<T> wraps a machine value with one bit of provenance: whether the
// value is influenced by program *input* (payload data). Kernel inputs are
// tainted at injection (source/source_all); arithmetic merges taint into its
// result; comparisons produce Tainted<bool>, whose contextual conversion to
// a raw bool is a *declassification* — the moment payload data starts
// steering control flow — recorded on a thread-local sink that the audit
// backend (audit/backend.hpp) drains at superstep boundaries.
//
// The declassification sink is the teeth of the analysis: a hand-written
// data-dependent program needs no special annotations to be caught, because
// any raw branch on payload-derived data (`if (x < y)`, std::sort with the
// default comparator, indexing a container with a payload-derived index via
// dep::index) necessarily crosses the Tainted<bool>/declassify() boundary.
// Conversely the dep:: helpers (util/dep.hpp) give oblivious kernels
// payload-safe spellings of value-order operations — compare-exchange,
// payload-segment sorting, rank computation — that keep results
// payload-typed and therefore event-free.
//
// The wrapper is deliberately transparent: implicit construction from a raw
// T (untainted — program constants stay clean), the full arithmetic and
// comparison surface including mixed tracked/raw operands, and value
// semantics throughout, so the value-generic kernels under src/algorithms/
// instantiate with Tainted payloads without textual change.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/dep.hpp"

namespace nobl::audit {

namespace taint_detail {

/// The per-thread declassification counter. Thread-local because registry
/// runners may execute under the parallel engine elsewhere in the process;
/// the audit backend itself drives bodies on one thread.
inline std::uint64_t& pending() noexcept {
  thread_local std::uint64_t count = 0;
  return count;
}

}  // namespace taint_detail

/// Record one declassification event on the calling thread's sink.
inline void note_declassify() noexcept { ++taint_detail::pending(); }

/// Events recorded since the last take_declassifications().
[[nodiscard]] inline std::uint64_t pending_declassifications() noexcept {
  return taint_detail::pending();
}

/// Drain the sink, returning the drained count.
inline std::uint64_t take_declassifications() noexcept {
  std::uint64_t& count = taint_detail::pending();
  const std::uint64_t drained = count;
  count = 0;
  return drained;
}

template <typename T>
class Tainted;

namespace taint_detail {

template <typename T>
struct is_tainted : std::false_type {};
template <typename T>
struct is_tainted<Tainted<T>> : std::true_type {};
template <typename T>
inline constexpr bool is_tainted_v = is_tainted<std::decay_t<T>>::value;

}  // namespace taint_detail

/// A machine value of type T carrying an input-influence bit.
template <typename T>
class Tainted {
 public:
  using raw_type = T;

  constexpr Tainted() = default;
  // NOLINTNEXTLINE(runtime/explicit): raw literals enter untainted by design
  constexpr Tainted(T value) : value_(std::move(value)) {}
  constexpr Tainted(T value, bool tainted)
      : value_(std::move(value)), tainted_(tainted) {}

  [[nodiscard]] constexpr const T& raw() const noexcept { return value_; }
  [[nodiscard]] constexpr bool tainted() const noexcept { return tainted_; }

  /// Collapse to the raw value, recording a declassification event when the
  /// value is tainted. This is the only sanctioned tracked -> raw door; the
  /// audit backend attributes the event to the enclosing (or next) superstep.
  [[nodiscard]] T declassify() const {
    if (tainted_) note_declassify();
    return value_;
  }

  /// Contextual conversion of a tracked bool — `if (a < b)` on tracked
  /// operands lands here — is a declassification like any other.
  explicit operator bool() const
    requires std::same_as<T, bool>
  {
    if (tainted_) note_declassify();
    return value_;
  }

  [[nodiscard]] constexpr Tainted operator-() const {
    return Tainted(static_cast<T>(-value_), tainted_);
  }

  template <typename U>
  constexpr Tainted& operator+=(const U& other) {
    assign(*this + other);
    return *this;
  }
  template <typename U>
  constexpr Tainted& operator-=(const U& other) {
    assign(*this - other);
    return *this;
  }
  template <typename U>
  constexpr Tainted& operator*=(const U& other) {
    assign(*this * other);
    return *this;
  }

 private:
  template <typename R>
  constexpr void assign(const Tainted<R>& result) {
    value_ = static_cast<T>(result.raw());
    tainted_ = result.tainted();
  }

  T value_{};
  bool tainted_ = false;
};

// Binary arithmetic: tracked op tracked merges taint; mixed tracked/raw
// operands keep the tracked side's taint. The raw-operand overloads are
// constrained so deduction never races the tracked/tracked form.
#define NOBL_AUDIT_TAINT_BINARY_OP(op)                                        \
  template <typename A, typename B>                                           \
  [[nodiscard]] constexpr auto operator op(const Tainted<A>& a,               \
                                           const Tainted<B>& b)               \
      ->Tainted<decltype(a.raw() op b.raw())> {                               \
    return {a.raw() op b.raw(), a.tainted() || b.tainted()};                  \
  }                                                                           \
  template <typename A, typename B>                                           \
    requires(!taint_detail::is_tainted_v<B>)                                  \
  [[nodiscard]] constexpr auto operator op(const Tainted<A>& a, const B& b)   \
      ->Tainted<decltype(a.raw() op b)> {                                     \
    return {a.raw() op b, a.tainted()};                                       \
  }                                                                           \
  template <typename A, typename B>                                           \
    requires(!taint_detail::is_tainted_v<A>)                                  \
  [[nodiscard]] constexpr auto operator op(const A& a, const Tainted<B>& b)   \
      ->Tainted<decltype(a op b.raw())> {                                     \
    return {a op b.raw(), b.tainted()};                                       \
  }

NOBL_AUDIT_TAINT_BINARY_OP(+)
NOBL_AUDIT_TAINT_BINARY_OP(-)
NOBL_AUDIT_TAINT_BINARY_OP(*)
NOBL_AUDIT_TAINT_BINARY_OP(/)
NOBL_AUDIT_TAINT_BINARY_OP(%)
NOBL_AUDIT_TAINT_BINARY_OP(^)
NOBL_AUDIT_TAINT_BINARY_OP(&)
NOBL_AUDIT_TAINT_BINARY_OP(|)

#undef NOBL_AUDIT_TAINT_BINARY_OP

// Comparisons yield a *tracked* bool; branching on it declassifies.
#define NOBL_AUDIT_TAINT_COMPARE_OP(op)                                       \
  template <typename A, typename B>                                           \
  [[nodiscard]] constexpr auto operator op(const Tainted<A>& a,               \
                                           const Tainted<B>& b)               \
      ->Tainted<decltype(a.raw() op b.raw())> {                               \
    return {a.raw() op b.raw(), a.tainted() || b.tainted()};                  \
  }                                                                           \
  template <typename A, typename B>                                           \
    requires(!taint_detail::is_tainted_v<B>)                                  \
  [[nodiscard]] constexpr auto operator op(const Tainted<A>& a, const B& b)   \
      ->Tainted<decltype(a.raw() op b)> {                                     \
    return {a.raw() op b, a.tainted()};                                       \
  }                                                                           \
  template <typename A, typename B>                                           \
    requires(!taint_detail::is_tainted_v<A>)                                  \
  [[nodiscard]] constexpr auto operator op(const A& a, const Tainted<B>& b)   \
      ->Tainted<decltype(a op b.raw())> {                                     \
    return {a op b.raw(), b.tainted()};                                       \
  }

NOBL_AUDIT_TAINT_COMPARE_OP(==)
NOBL_AUDIT_TAINT_COMPARE_OP(!=)
NOBL_AUDIT_TAINT_COMPARE_OP(<)
NOBL_AUDIT_TAINT_COMPARE_OP(<=)
NOBL_AUDIT_TAINT_COMPARE_OP(>)
NOBL_AUDIT_TAINT_COMPARE_OP(>=)

#undef NOBL_AUDIT_TAINT_COMPARE_OP

/// Taint one input value at the injection boundary.
template <typename T>
[[nodiscard]] Tainted<T> source(const T& value) {
  return Tainted<T>(value, true);
}

/// Taint a whole input vector at the injection boundary.
template <typename T>
[[nodiscard]] std::vector<Tainted<T>> source_all(const std::vector<T>& values) {
  std::vector<Tainted<T>> tracked;
  tracked.reserve(values.size());
  for (const T& value : values) tracked.push_back(source(value));
  return tracked;
}

}  // namespace nobl::audit

namespace nobl::dep {

template <typename T>
inline constexpr bool is_tracked_v<audit::Tainted<T>> = true;

template <typename T>
struct index_type<audit::Tainted<T>> {
  using type = audit::Tainted<std::uint64_t>;
};

}  // namespace nobl::dep
