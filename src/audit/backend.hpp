// AuditBackend: the non-executing obliviousness analyzer.
//
// The sixth interpreter of the Program IR (after simulate / cost / record /
// analytic / distributed): it drives the same superstep bodies as
// CostBackend — sequentially, payload-free, with identical validation
// (label range, no nesting, strictly increasing sparse sets, destination
// range, i-cluster containment) — but instead of degree accounting it
// performs taint-style abstract interpretation of the communication
// structure. A program instantiated with Tainted payloads (audit/taint.hpp)
// runs once; the backend classifies every superstep:
//
//   * tainted destination — a send whose dst is a tracked value carrying
//     taint: the message's endpoint depends on input data;
//   * tainted count — a send_dummy whose burst size carries taint;
//   * control dependence — declassification events (tracked -> raw
//     collapses: branches on tracked comparisons, dep::index) recorded on
//     the thread-local sink since the previous superstep closed; they mark
//     the superstep they precede (or occur inside), because the raw values
//     they produce steer that step's host-mirrored structure: who is active,
//     what the roster holds, how many messages a VP emits.
//
// A kernel is *network-oblivious* in the audited sense iff its report is
// event-free: no step has a tainted destination, a tainted count, or an
// attributed declassification, and nothing declassifies after the last
// superstep. That is precisely the paper's requirement that the
// communication pattern be a function of (n, v) alone.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "audit/taint.hpp"
#include "bsp/machine.hpp"
#include "util/bits.hpp"
#include "util/dep.hpp"

namespace nobl::audit {

/// Per-superstep classification.
struct StepAudit {
  unsigned label = 0;
  std::uint64_t sends = 0;         ///< real send events
  std::uint64_t dummy_bursts = 0;  ///< send_dummy events (count > 0)
  std::uint64_t tainted_destinations = 0;
  std::uint64_t tainted_counts = 0;
  /// Declassifications attributed to this step: pending on the sink when
  /// the step opened (host-phase events) plus those recorded by its bodies.
  std::uint64_t declassifications = 0;

  [[nodiscard]] bool data_dependent() const noexcept {
    return tainted_destinations != 0 || tainted_counts != 0 ||
           declassifications != 0;
  }
};

/// The audit of one program run.
struct AuditReport {
  unsigned log_v = 0;
  std::vector<StepAudit> steps;
  /// Declassifications recorded after the last superstep closed (final
  /// host mirrors that collapse tracked indices, e.g. writing outputs).
  std::uint64_t trailing_declassifications = 0;

  [[nodiscard]] std::uint64_t tainted_destinations() const noexcept {
    std::uint64_t total = 0;
    for (const StepAudit& step : steps) total += step.tainted_destinations;
    return total;
  }
  [[nodiscard]] std::uint64_t tainted_counts() const noexcept {
    std::uint64_t total = 0;
    for (const StepAudit& step : steps) total += step.tainted_counts;
    return total;
  }
  [[nodiscard]] std::uint64_t declassifications() const noexcept {
    std::uint64_t total = trailing_declassifications;
    for (const StepAudit& step : steps) total += step.declassifications;
    return total;
  }
  /// Indices of the data-dependent supersteps.
  [[nodiscard]] std::vector<std::size_t> flagged_steps() const {
    std::vector<std::size_t> flagged;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].data_dependent()) flagged.push_back(i);
    }
    return flagged;
  }
  /// The audited obliviousness verdict: no step (and no trailing host
  /// phase) shows input influence on the communication structure.
  [[nodiscard]] bool oblivious() const noexcept {
    if (trailing_declassifications != 0) return false;
    for (const StepAudit& step : steps) {
      if (step.data_dependent()) return false;
    }
    return true;
  }
};

/// The taint-interpreting backend. Validation parity with CostBackend is
/// deliberate and pinned by tests: a program that audits also certifies,
/// and vice versa.
class AuditBackend {
 public:
  static constexpr bool delivers = false;

  class VpRef {
   public:
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] std::uint64_t v() const noexcept { return backend_->v_; }
    [[nodiscard]] unsigned log_v() const noexcept { return backend_->log_v_; }

    /// Classify and validate a real message. The destination may be a raw
    /// index or a tracked one; tracked-and-tainted destinations flag the
    /// step. Payloads are accepted for call-site compatibility and
    /// discarded — taint flows through host mirrors, not inboxes.
    template <typename Dst, typename Payload>
    void send(const Dst& dst, Payload&&) {
      const std::uint64_t raw_dst = resolve(dst, &StepAudit::tainted_destinations);
      backend_->check_send(id_, raw_dst);
      ++backend_->step_.sends;
    }

    /// Classify and validate a dummy burst; tainted counts flag the step.
    template <typename Dst, typename Count = std::uint64_t>
    void send_dummy(const Dst& dst, const Count& count = Count{1}) {
      const std::uint64_t raw_count = resolve(count, &StepAudit::tainted_counts);
      if (raw_count == 0) return;
      const std::uint64_t raw_dst = resolve(dst, &StepAudit::tainted_destinations);
      backend_->check_send(id_, raw_dst);
      ++backend_->step_.dummy_bursts;
    }

   private:
    friend class AuditBackend;
    VpRef(AuditBackend* backend, std::uint64_t id)
        : backend_(backend), id_(id) {}

    /// Unwrap a possibly-tracked operand; a tainted one bumps `counter` on
    /// the open step. Does NOT declassify: the taint event is attributed
    /// structurally, not through the generic sink.
    template <typename V>
    std::uint64_t resolve(const V& value, std::uint64_t StepAudit::* counter) {
      if constexpr (dep::is_tracked_v<std::decay_t<V>>) {
        if (value.tainted()) ++(backend_->step_.*counter);
        return static_cast<std::uint64_t>(value.raw());
      } else {
        return static_cast<std::uint64_t>(value);
      }
    }

    AuditBackend* backend_;
    std::uint64_t id_;
  };

  /// Create an audit backend for M(v). v must be a power of two. Drains any
  /// stale events off the thread's sink so reports never inherit history.
  explicit AuditBackend(std::uint64_t v)
      : log_v_(log2_exact(v)), v_(v) {
    report_.log_v = log_v_;
    (void)take_declassifications();
  }

  [[nodiscard]] std::uint64_t v() const noexcept { return v_; }
  [[nodiscard]] unsigned log_v() const noexcept { return log_v_; }

  template <typename Body>
  void superstep(unsigned label, Body&& body) {
    superstep_range(label, 0, v_, std::forward<Body>(body));
  }

  template <typename Body>
  void superstep_range(unsigned label, std::uint64_t first, std::uint64_t last,
                       Body&& body) {
    begin_superstep(label);
    for (std::uint64_t r = first; r < last; ++r) {
      VpRef vp(this, r);
      body(vp);
    }
    end_superstep();
  }

  template <typename Body>
  void superstep_sparse(unsigned label, std::span<const std::uint64_t> active,
                        Body&& body) {
    begin_superstep(label);
    std::uint64_t previous = 0;
    bool first = true;
    for (const std::uint64_t r : active) {
      if (r >= v_ || (!first && r <= previous)) {
        in_superstep_ = false;
        throw std::invalid_argument(
            "AuditBackend: sparse active set must be strictly increasing VP "
            "ids");
      }
      previous = r;
      first = false;
    }
    for (const std::uint64_t r : active) {
      VpRef vp(this, r);
      body(vp);
    }
    end_superstep();
  }

  /// Finish the run: attribute any post-superstep declassifications (final
  /// host mirrors) and return the report. The backend may not drive further
  /// supersteps through the returned snapshot's run.
  [[nodiscard]] AuditReport take_report() {
    report_.trailing_declassifications += take_declassifications();
    return report_;
  }

 private:
  void begin_superstep(unsigned label) {
    const unsigned label_bound = log_v_ < 1 ? 1 : log_v_;
    if (label >= label_bound) {
      throw std::invalid_argument("AuditBackend: superstep label out of range");
    }
    if (in_superstep_) {
      throw std::logic_error("AuditBackend: nested superstep");
    }
    in_superstep_ = true;
    step_ = StepAudit{};
    step_.label = label;
    // Host-phase declassifications since the previous barrier shaped THIS
    // step's structure (rosters, per-VP send counts) — attribute them here.
    step_.declassifications = take_declassifications();
    breach_shift_ = log_v_ - label;
  }

  void end_superstep() {
    // Declassifications inside bodies steer this step's own control flow.
    step_.declassifications += take_declassifications();
    report_.steps.push_back(step_);
    in_superstep_ = false;
  }

  void check_send(std::uint64_t src, std::uint64_t dst) const {
    if (dst >= v_) {
      throw std::out_of_range("AuditBackend: destination VP out of range");
    }
    if (((src ^ dst) >> breach_shift_) != 0) {
      throw ClusterViolation(
          "AuditBackend: message leaves the sender's " +
          std::to_string(step_.label) + "-cluster (src=" + std::to_string(src) +
          ", dst=" + std::to_string(dst) + ")");
    }
  }

  unsigned log_v_;
  std::uint64_t v_;
  bool in_superstep_ = false;
  unsigned breach_shift_ = 0;
  StepAudit step_{};
  AuditReport report_;
};

}  // namespace nobl::audit
