// Registry-wide obliviousness audit: one verdict per kernel.
//
// For every AlgoEntry the auditor performs two independent static passes:
//
//   1. Taint classification — the kernel's program template is instantiated
//      with Tainted payloads (audit/taint.hpp) on its registry workload and
//      driven once by AuditBackend (audit/backend.hpp), which never
//      executes a message: the result is a per-superstep map of where input
//      values influence the communication structure (tainted destinations,
//      tainted dummy counts, declassifications). The verdict is
//      cross-checked against the registry's `input_independent` annotation:
//      samplesort must flag, the other kernels must come back clean — a
//      disagreement in either direction fails `nobl audit` and the pinned
//      registry test.
//
//   2. Schedule lint — the kernel's recorded Schedule (BackendKind::kRecord
//      at the same size) is checked against the structural invariants of
//      the D-BSP specification model: per-label cluster containment,
//      dummy-traffic discipline, local-fold degree structure, and the
//      registry's predict::/lb:: formulas (exact for exact_h kernels, an
//      envelope otherwise) — audit/schedule_lint.hpp.
//
// Default audit size: the kernel's first smoke size, the same size the CI
// smoke campaign exercises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/backend.hpp"
#include "audit/schedule_lint.hpp"
#include "core/registry.hpp"

namespace nobl::audit {

/// The audit outcome for one kernel at one size.
struct KernelVerdict {
  std::string name;
  std::uint64_t n = 0;  ///< audited size (registry size semantics)
  AuditReport report;   ///< the taint classification, per superstep
  /// True iff the taint pass saw input influence on the communication
  /// structure (== !report.oblivious()).
  bool data_dependent = false;
  /// The registry's static annotation for cross-checking.
  bool registry_input_independent = true;
  /// True iff verdict and annotation agree: data-dependent kernels must be
  /// annotated input_independent = false and vice versa.
  bool matches_registry = false;
  /// Structural lint of the recorded schedule (empty == clean).
  ScheduleLintReport lint;

  /// The kernel passes the audit: verdict matches the annotation and the
  /// recorded schedule lints clean.
  [[nodiscard]] bool passed() const noexcept {
    return matches_registry && lint.clean();
  }
};

/// Audit one registry kernel. n = 0 selects the entry's first smoke size.
/// Throws std::invalid_argument for inadmissible sizes (same gate as the
/// registry runner).
[[nodiscard]] KernelVerdict audit_kernel(const AlgoEntry& entry,
                                         std::uint64_t n = 0);

/// Audit every registered kernel at its default size, in registry order.
[[nodiscard]] std::vector<KernelVerdict> audit_registry();

}  // namespace nobl::audit
