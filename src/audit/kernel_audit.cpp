#include "audit/kernel_audit.hpp"

#include <complex>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "algorithms/bitonic.hpp"
#include "algorithms/broadcast.hpp"
#include "algorithms/fft.hpp"
#include "algorithms/matmul.hpp"
#include "algorithms/matmul_space.hpp"
#include "algorithms/primitives.hpp"
#include "algorithms/samplesort.hpp"
#include "algorithms/scan.hpp"
#include "algorithms/sort.hpp"
#include "algorithms/stencil1d.hpp"
#include "algorithms/stencil2d.hpp"
#include "algorithms/transpose.hpp"
#include "audit/taint.hpp"
#include "core/workloads.hpp"
#include "util/bits.hpp"
#include "util/matrix.hpp"

namespace nobl::audit {
namespace {

/// Taint every element of a workload matrix at the injection boundary.
template <typename T>
Matrix<Tainted<T>> taint_matrix(const Matrix<T>& m) {
  Matrix<Tainted<T>> tracked(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      tracked(i, j) = source(m(i, j));
    }
  }
  return tracked;
}

/// Drive the kernel's program template, instantiated with tracked payloads
/// on the registry workload (same generators, same seeds — seed = n, the
/// registry runners' convention), under the audit backend. Name-keyed
/// because each kernel owns its workload and payload type; adding a kernel
/// without extending this dispatch fails audit_kernel loudly.
AuditReport taint_run(const std::string& name, std::uint64_t n) {
  using namespace workloads;
  if (name == "matmul") {
    const std::uint64_t m = sqrt_pow2(n);
    const auto a = taint_matrix(random_matrix(m, m));
    const auto b = taint_matrix(random_matrix(m, m + 1));
    AuditBackend bk(n);
    (void)matmul_program(bk, a, b, true);
    return bk.take_report();
  }
  if (name == "matmul-space") {
    const std::uint64_t m = sqrt_pow2(n);
    const auto a = taint_matrix(random_matrix(m, m));
    const auto b = taint_matrix(random_matrix(m, m + 1));
    AuditBackend bk(n);
    (void)matmul_space_program(bk, a, b, true);
    return bk.take_report();
  }
  if (name == "fft") {
    const auto signal = source_all(random_signal(n, n));
    AuditBackend bk(n);
    (void)fft_program(bk, signal, true);
    return bk.take_report();
  }
  if (name == "sort") {
    const auto keys = source_all(random_keys(n, n));
    AuditBackend bk(n);
    (void)sort_program(bk, keys, true);
    return bk.take_report();
  }
  if (name == "bitonic") {
    const auto keys = source_all(random_keys(n, n));
    AuditBackend bk(n);
    (void)bitonic_sort_program(bk, keys);
    return bk.take_report();
  }
  if (name == "stencil1") {
    const auto rod = source_all(random_rod(n, n));
    AuditBackend bk(n);
    (void)stencil1_program(bk, rod,
                           [](const auto& l, const auto& c, const auto& r) {
                             return 0.25 * l + 0.5 * c + 0.25 * r;
                           },
                           true, 0);
    return bk.take_report();
  }
  if (name == "stencil2") {
    // No input values reach the program: the schedule is a function of n
    // alone, so the taint pass runs the production template unchanged.
    AuditBackend bk(n * n);
    (void)stencil2_program(bk, n, true, 0);
    return bk.take_report();
  }
  if (name == "scan") {
    const auto addends = source_all(random_addends(n, n));
    AuditBackend bk(n);
    (void)scan_program(bk, addends);
    return bk.take_report();
  }
  if (name == "transpose") {
    const std::uint64_t m = sqrt_pow2(n);
    const auto a = taint_matrix(random_matrix(m, m));
    AuditBackend bk(n);
    (void)transpose_program(bk, a);
    return bk.take_report();
  }
  if (name == "samplesort") {
    const auto keys = source_all(random_keys(n, n));
    AuditBackend bk(n);
    (void)samplesort_program(bk, keys);
    return bk.take_report();
  }
  if (name == "broadcast") {
    AuditBackend bk(n);
    (void)broadcast_program(bk, 2, source(std::uint64_t{1}));
    return bk.take_report();
  }
  if (name == "reduce") {
    const auto addends = source_all(random_addends(n, n));
    AuditBackend bk(n);
    (void)reduce_program(bk, addends);
    return bk.take_report();
  }
  if (name == "gather") {
    const auto values = source_all(random_keys(n, n));
    AuditBackend bk(n);
    (void)gather_program(bk, values);
    return bk.take_report();
  }
  if (name == "shift") {
    const auto values = source_all(random_keys(n, n));
    AuditBackend bk(n);
    (void)shift_program(bk, values);
    return bk.take_report();
  }
  throw std::invalid_argument("audit: kernel \"" + name +
                              "\" has no taint instantiation — extend "
                              "src/audit/kernel_audit.cpp");
}

}  // namespace

KernelVerdict audit_kernel(const AlgoEntry& entry, std::uint64_t n) {
  if (n == 0) {
    if (entry.smoke_sizes.empty()) {
      throw std::invalid_argument("audit: kernel \"" + entry.name +
                                  "\" has no smoke sizes and no explicit n");
    }
    n = entry.smoke_sizes.front();
  }
  if (!entry.admits(n)) {
    throw std::invalid_argument(entry.inadmissible_message(n));
  }

  KernelVerdict verdict;
  verdict.name = entry.name;
  verdict.n = n;
  verdict.registry_input_independent = entry.input_independent;

  verdict.report = taint_run(entry.name, n);
  verdict.data_dependent = !verdict.report.oblivious();
  verdict.matches_registry =
      verdict.data_dependent == !entry.input_independent;

  Schedule schedule;
  RunOptions record;
  record.backend = BackendKind::kRecord;
  record.capture = &schedule;
  (void)entry.runner(n, record);
  verdict.lint = lint_schedule(schedule);
  merge_into(verdict.lint,
             lint_against_formulas(schedule.replay_trace(), n, entry.predicted,
                                   entry.lower_bound, entry.exact_h,
                                   entry.name));
  return verdict;
}

std::vector<KernelVerdict> audit_registry() {
  std::vector<KernelVerdict> verdicts;
  const auto& entries = AlgoRegistry::instance().entries();
  verdicts.reserve(entries.size());
  for (const AlgoEntry& entry : entries) {
    verdicts.push_back(audit_kernel(entry, 0));
  }
  return verdicts;
}

}  // namespace nobl::audit
