// Percentile analytics over a skewed workload with network-oblivious
// Columnsort (Section 4.3).
//
// Response-time-like samples (log-normal-ish, heavy tail) are sorted on
// M(n); percentiles are then rank lookups. The cost table shows Theorem
// 4.8's polylog sorting premium over the FFT-type lower bound appearing
// only at high parallelism — the paper's "optimal for p = O(n^{1-δ})".
//
// Build & run:  ./examples/sorting_analytics
#include <cmath>
#include <iostream>
#include <vector>

#include "algorithms/sort.hpp"
#include "bsp/cost.hpp"
#include "core/lower_bounds.hpp"
#include "core/predictions.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace nobl;
  constexpr std::uint64_t n = 4096;

  // Synthetic latency samples in microseconds: exp(N(7, 0.8)) approximated
  // with a sum of uniforms, plus a 1% tail of stragglers.
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> samples(n);
  for (auto& s : samples) {
    double g = 0;
    for (int i = 0; i < 12; ++i) g += rng.unit();
    g = (g - 6.0) * 0.8 + 7.0;  // ~N(7, 0.8)
    s = static_cast<std::uint64_t>(std::exp(g));
    if (rng.below(100) == 0) s *= 50;  // stragglers
  }

  const auto run = sort_oblivious(samples);
  auto pct = [&](double q) {
    return run.output[static_cast<std::size_t>(q * (n - 1))];
  };
  std::cout << "latency percentiles over " << n << " samples (us):\n"
            << "  p50=" << pct(0.50) << "  p90=" << pct(0.90)
            << "  p99=" << pct(0.99) << "  p99.9=" << pct(0.999)
            << "  max=" << run.output.back() << "\n\n";

  Table t("Columnsort cost (Theorem 4.8) vs the Lemma 4.7 lower bound",
          {"p", "H measured", "H predicted", "lower bound", "meas/LB",
           "supersteps used"});
  for (std::uint64_t p = 4; p <= n; p *= 4) {
    const unsigned log_p = log2_exact(p);
    const double h = communication_complexity(run.trace, log_p, 0);
    t.row()
        .add(p)
        .add(h)
        .add(predict::sort(n, p, 0))
        .add(lb::sort(n, p, 0))
        .add(h / lb::sort(n, p, 0))
        .add(run.trace.total_S(log_p));
  }
  std::cout << t
            << "\nmeas/LB stays bounded at moderate p and grows polylog at "
               "p -> n,\nexactly the Theorem 4.8 / Corollary 4.9 regime "
               "split.\n";
  return 0;
}
