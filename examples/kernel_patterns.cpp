// Tour of the three communication patterns added by the scan / transpose /
// sample-sort kernels: tree reduction, recursive all-to-all permutation,
// and data-dependent splitter routing. Everything below comes off the
// registry — runner, closed forms, certification — which is all a new
// kernel needs to wire up to be drivable from here, the benches, and nobl.
#include <iostream>

#include "algorithms/samplesort.hpp"
#include "bsp/cost.hpp"
#include "core/experiment.hpp"
#include "core/registry.hpp"
#include "core/workloads.hpp"
#include "util/table.hpp"

int main() {
  using namespace nobl;
  const std::uint64_t n = 64;

  for (const char* name : {"scan", "transpose", "samplesort"}) {
    const AlgoEntry& entry = AlgoRegistry::instance().at(name);
    std::cout << "== " << entry.name << " — " << entry.summary << " ==\n";
    const AlgoRun run{n, entry.runner(n, ExecutionPolicy::sequential())};
    std::cout << superstep_census("superstep census by label", run);
    std::cout << h_table("measured vs closed forms", {run}, entry.predicted,
                         entry.lower_bound);
  }

  // Sample-sort is the one kernel whose degrees follow the data: identical
  // superstep structure, different traffic on a duplicate-heavy input.
  const auto random = samplesort_oblivious(workloads::random_keys(n, n));
  const auto heavy =
      samplesort_oblivious(workloads::duplicate_heavy_keys(n, n));
  Table t("static structure, data-dependent degrees (samplesort, n=64)",
          {"input", "supersteps", "messages", "H(p=8, sigma=0)"});
  t.row()
      .add("random keys")
      .add(random.trace.supersteps())
      .add(random.trace.total_messages())
      .add(communication_complexity(random.trace, 3, 0));
  t.row()
      .add("4 distinct keys")
      .add(heavy.trace.supersteps())
      .add(heavy.trace.total_messages())
      .add(communication_complexity(heavy.trace, 3, 0));
  std::cout << t;
  return 0;
}
