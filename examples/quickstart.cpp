// Quickstart: write one network-oblivious algorithm, run it once on the
// specification model, and read off its cost on every machine you care
// about.
//
//   1. An algorithm is written against M(v): labeled supersteps, send(),
//      inbox(). Here: a tree reduction followed by a broadcast of the total.
//   2. One execution records the full communication trace.
//   3. The trace is *folded*: H(n, p, σ) for every p (evaluation model) and
//      D(n, p, g⃗, ℓ⃗) for every topology (D-BSP execution model) come from
//      the same run — that is the point of network-obliviousness.
//
// Build & run:  ./examples/quickstart
#include <iostream>
#include <numeric>
#include <vector>

#include "algorithms/primitives.hpp"
#include "bsp/cost.hpp"
#include "bsp/machine.hpp"
#include "bsp/topology.hpp"
#include "core/wiseness.hpp"
#include "util/table.hpp"

int main() {
  using namespace nobl;
  constexpr std::uint64_t v = 256;

  // --- 1. A tiny network-oblivious program on M(256). -------------------
  Machine<long> machine(v);
  std::vector<long> values(v);
  std::iota(values.begin(), values.end(), 1);  // 1..256

  // Tree-reduce the sum to VP 0 (log v supersteps, finest legal labels).
  reduce_segments(machine, std::span<long>(values), v,
                  [](long a, long b) { return a + b; });
  const long total = values[0];

  // Broadcast the total back down the same tree.
  std::vector<long> out(v, 0);
  out[0] = total;
  for (unsigned level = 0; level < machine.log_v(); ++level) {
    const std::uint64_t stride = v >> (level + 1);
    machine.superstep(level, [&](Vp<long>& vp) {
      if (vp.id() % (2 * stride) == 0) {
        vp.send(vp.id() + stride, out[vp.id()]);
        out[vp.id() + stride] = out[vp.id()];
      }
    });
  }

  std::cout << "allreduce(1..=" << v << ") = " << total << " (expected "
            << (v * (v + 1)) / 2 << ") on every VP: "
            << (std::all_of(out.begin(), out.end(),
                            [&](long x) { return x == total; })
                    ? "yes"
                    : "NO")
            << "\n\n";

  // --- 2. One trace, every machine. --------------------------------------
  const Trace& trace = machine.trace();
  Table h("Evaluation model: H(n, p, sigma) from the single recorded trace",
          {"p", "sigma=0", "sigma=4", "sigma=32", "wiseness alpha"});
  for (std::uint64_t p = 2; p <= v; p *= 4) {
    const unsigned log_p = log2_exact(p);
    h.row()
        .add(p)
        .add(communication_complexity(trace, log_p, 0))
        .add(communication_complexity(trace, log_p, 4))
        .add(communication_complexity(trace, log_p, 32))
        .add(wiseness_alpha(trace, log_p));
  }
  std::cout << h << '\n';

  Table d("Execution model: D-BSP communication time, same trace",
          {"topology", "D(p=16)", "D(p=256)"});
  for (const auto& make : {topology::hypercube, topology::linear_array}) {
    const auto p16 = make(16, 1.0, 1.0);
    const auto p256 = make(256, 1.0, 1.0);
    d.row()
        .add(p256.name)
        .add(communication_time(trace, p16))
        .add(communication_time(trace, p256));
  }
  d.row()
      .add(topology::mesh(256, 2).name)
      .add(communication_time(trace, topology::mesh(16, 2)))
      .add(communication_time(trace, topology::mesh(256, 2)));
  std::cout << d;
  return 0;
}
