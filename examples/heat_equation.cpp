// Heat diffusion on a rod: the motivating workload for the (n,1)-stencil
// algorithm of Section 4.4.1.
//
// A hot spot diffuses along a rod of n cells for n timesteps. We run the
// same physics twice — with the network-oblivious diamond decomposition
// (Figure 1) and with the naive row-per-superstep schedule — and compare
// their communication time on machines with different latency profiles.
//
// Build & run:  ./examples/heat_equation
#include <iostream>
#include <vector>

#include "algorithms/stencil1d.hpp"
#include "bsp/cost.hpp"
#include "bsp/topology.hpp"
#include "util/table.hpp"

int main() {
  using namespace nobl;
  constexpr std::uint64_t n = 256;

  // Hot spot in the middle of the rod.
  std::vector<double> rod(n, 0.0);
  rod[n / 2] = 1000.0;
  const auto physics = [](double l, double c, double r) {
    return 0.25 * l + 0.5 * c + 0.25 * r;
  };

  const auto diamond = stencil1_oblivious(rod, physics);
  const auto rowwise = stencil1_rowwise(rod, physics);

  // Identical physics, different schedules.
  std::cout << "temperature after " << n - 1 << " steps (sampled):\n  ";
  for (std::uint64_t x = n / 2 - 32; x <= n / 2 + 32; x += 16) {
    std::cout << "T[" << x << "]=" << Table::format_double(
                     diamond.grid(n - 1, x))
              << "  ";
  }
  std::cout << "\n  schedules agree: "
            << (diamond.grid == rowwise.grid ? "yes" : "NO") << "\n\n";

  Table t("Diamond decomposition vs row-wise schedule (same physics)",
          {"machine", "D diamond", "D row-wise", "row/diamond"});
  struct Probe {
    const char* name;
    DbspParams params;
  };
  const std::vector<Probe> probes{
      {"hypercube p=16 (cheap sync)", topology::hypercube(16)},
      {"uniform p=16, ell=100", topology::uniform(16, 1.0, 100.0)},
      {"uniform p=4, ell=1000 (WAN-ish)", topology::uniform(4, 1.0, 1000.0)},
      {"linear array p=16", topology::linear_array(16)},
  };
  for (const auto& probe : probes) {
    const double dd = communication_time(diamond.trace, probe.params);
    const double dr = communication_time(rowwise.trace, probe.params);
    t.row().add(probe.name).add(dd).add(dr).add(dr / dd);
  }
  std::cout << t
            << "\nThe diamond schedule trades a 4^sqrt(log n) message-volume "
               "factor for\nbarrier locality: the higher the latency, the "
               "bigger its win.\n";
  return 0;
}
