// Campaigns as a library: build a spec in code, run it, and consume the
// results programmatically — the same machinery behind `nobl run`, without
// shelling out. Useful as a template for embedding sweeps in notebooks,
// services, or custom analysis drivers.
#include <iostream>
#include <sstream>

#include "cli/campaign.hpp"

int main() {
  using namespace nobl;

  // A small two-algorithm campaign across both engines. Specs can also be
  // parsed from text (parse_campaign_spec) or resolved from the builtins
  // (builtin_campaign("ci-smoke")).
  CampaignSpec spec;
  spec.name = "example";
  spec.sweeps = {{"fft", {256}}, {"broadcast", {256}}};
  spec.engines = {ExecutionPolicy::sequential(), ExecutionPolicy::parallel(2)};

  const CampaignResult result = run_campaign(spec);

  // Consume results as structs...
  std::cout << "campaign \"" << result.spec.name << "\": " << result.runs.size()
            << " runs\n";
  for (const RunResult& run : result.runs) {
    double worst_ratio = 0;
    for (const CellResult& cell : run.cells) {
      worst_ratio = std::max(worst_ratio, cell.ratio_lb);
    }
    std::cout << "  " << run.algorithm << " n=" << run.n << " [" << run.engine
              << "]  supersteps=" << run.supersteps
              << "  worst H/LB=" << worst_ratio
              << "  alpha=" << run.certification.alpha
              << "  guarantee=" << run.certification.guarantee() << "\n";
  }

  // ...or as the schema-versioned JSON document `nobl check` validates.
  std::ostringstream json;
  write_campaign_json(json, result);
  const std::vector<std::string> violations =
      validate_campaign_json(JsonValue::parse(json.str()));
  std::cout << "result document: " << json.str().size() << " bytes, "
            << (violations.empty() ? "schema-valid" : "INVALID") << "\n";
  return violations.empty() ? 0 : 1;
}
