// Protocol workbench: rescue a communication-skewed workload with the
// Section-5 ascend–descend protocol, and archive the evidence.
//
// Scenario: a parameter-server-like pattern — every VP pushes an update to
// one hot VP. This is exactly the paper's non-wise example at scale: the
// standard folding execution serializes the hot processor's traffic; the
// ascend–descend executor spreads and regathers it with real message hops.
// Both traces are then persisted via the CSV trace format so the analysis
// can be rerun without re-simulation.
//
// Build & run:  ./examples/protocol_workbench
#include <iostream>
#include <sstream>

#include "bsp/cost.hpp"
#include "bsp/machine.hpp"
#include "bsp/topology.hpp"
#include "bsp/trace_io.hpp"
#include "core/wiseness.hpp"
#include "dbsp/ascend_descend.hpp"
#include "dbsp/routed_protocol.hpp"
#include "util/table.hpp"

int main() {
  using namespace nobl;
  constexpr std::uint64_t p = 64;
  constexpr std::uint64_t hot = 21;  // an arbitrary hot VP
  constexpr std::uint64_t updates_per_vp = 8;

  // The skewed relation: everyone pushes to `hot`.
  std::vector<RoutedMsg<int>> relation;
  Machine<int> direct(p);
  direct.superstep(0, [&](Vp<int>& vp) {
    for (std::uint64_t u = 0; u < updates_per_vp; ++u) {
      if (vp.id() != hot) {
        vp.send(hot, static_cast<int>(u));
      }
    }
  });
  for (std::uint64_t src = 0; src < p; ++src) {
    for (std::uint64_t u = 0; u < updates_per_vp; ++u) {
      if (src != hot) {
        relation.push_back(RoutedMsg<int>{src, hot, static_cast<int>(u)});
      }
    }
  }

  const auto routed = execute_ascend_descend(p, 0, relation);
  const Trace transformed = ascend_descend_transform(direct.trace(), 6);

  std::cout << "hot-spot push: " << relation.size() << " updates -> VP "
            << hot << "\n  routed executor delivered: "
            << routed.delivered[hot].size() << " (all "
            << (routed.delivered[hot].size() == relation.size() ? "ok"
                                                                : "MISSING")
            << ")\n  wiseness alpha: direct = "
            << wiseness_alpha(direct.trace(), 6)
            << ", routed = " << wiseness_alpha(routed.trace, 6) << "\n\n";

  Table t("standard folding vs Section-5 protocol (p = 64)",
          {"machine", "D standard", "D transform", "D routed"});
  for (const auto& params : topology::standard_suite(p)) {
    t.row()
        .add(params.name)
        .add(communication_time(direct.trace(), params))
        .add(communication_time(transformed, params))
        .add(communication_time(routed.trace, params));
  }
  std::cout << t << '\n';

  // Archive both traces; show the round-trip is lossless.
  std::stringstream archive;
  write_trace_csv(archive, routed.trace);
  const std::size_t bytes = archive.str().size();
  const Trace restored = read_trace_csv(archive);
  std::cout << "trace archive: " << routed.trace.supersteps()
            << " supersteps -> " << bytes << " bytes of CSV; reload "
            << (communication_time(restored, topology::hypercube(p)) ==
                        communication_time(routed.trace,
                                           topology::hypercube(p))
                    ? "bit-exact"
                    : "MISMATCH")
            << "\n";
  return 0;
}
