// Topology explorer: one trace per algorithm, every D-BSP in the standard
// suite — the "run unchanged, yet efficiently, on a variety of machines"
// claim of the paper's abstract, made tangible.
//
// For each Section-4 algorithm we print the communication time on each
// topology together with the folding-derived D-BSP lower bound
// (core/optimality.hpp) and the measured wiseness α driving Theorem 3.4's
// guarantee αβ/(1+α).
//
// Build & run:  ./examples/topology_explorer
#include <iostream>
#include <vector>

#include "algorithms/fft.hpp"
#include "algorithms/matmul.hpp"
#include "algorithms/sort.hpp"
#include "bsp/cost.hpp"
#include "bsp/topology.hpp"
#include "core/lower_bounds.hpp"
#include "core/optimality.hpp"
#include "core/wiseness.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

nobl::Matrix<long> random_matrix(std::uint64_t m, std::uint64_t seed) {
  nobl::Matrix<long> a(m, m);
  nobl::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      a(i, j) = static_cast<long>(rng.below(100));
    }
  }
  return a;
}

}  // namespace

int main() {
  using namespace nobl;
  constexpr std::uint64_t p = 64;

  struct Entry {
    std::string name;
    std::uint64_t n;
    Trace trace;
    LowerBoundFn lower;
  };
  std::vector<Entry> entries;

  {
    const auto run = matmul_oblivious(random_matrix(64, 1), random_matrix(64, 2));
    entries.push_back({"matmul n=4096", 4096, run.trace,
                       [](std::uint64_t n, std::uint64_t pp, double s) {
                         return lb::matmul(n, pp, s);
                       }});
  }
  {
    Xoshiro256 rng(3);
    std::vector<std::complex<double>> x(4096);
    for (auto& v : x) v = {rng.unit(), rng.unit()};
    entries.push_back({"fft n=4096", 4096, fft_oblivious(x).trace,
                       [](std::uint64_t n, std::uint64_t pp, double s) {
                         return lb::fft(n, pp, s);
                       }});
  }
  {
    Xoshiro256 rng(4);
    std::vector<std::uint64_t> keys(4096);
    for (auto& k : keys) k = rng.below(1ULL << 32);
    entries.push_back({"sort n=4096", 4096, sort_oblivious(keys).trace,
                       [](std::uint64_t n, std::uint64_t pp, double s) {
                         return lb::sort(n, pp, s);
                       }});
  }

  for (const auto& entry : entries) {
    const unsigned log_p = log2_exact(p);
    Table t(entry.name + " on every topology (p = 64), one trace",
            {"topology", "D measured", "D lower bound", "ratio"});
    for (const auto& params : topology::standard_suite(p)) {
      const double d = communication_time(entry.trace, params);
      const double lower = dbsp_lower_bound(entry.lower, entry.n, params);
      t.row().add(params.name).add(d).add(lower).add(
          lower > 0 ? d / lower : 0.0);
    }
    std::cout << t << "  wiseness alpha(p=64) = "
              << wiseness_alpha(entry.trace, log_p) << "\n\n";
  }
  std::cout << "Same binaries, same traces - only the (g, ell) vectors "
               "changed.\n";
  return 0;
}
