// Spectral low-pass filtering with the network-oblivious FFT (Section 4.2).
//
// A clean two-tone signal is corrupted with high-frequency noise, filtered
// in the frequency domain, and reconstructed with an inverse transform
// (computed as conj(FFT(conj(X)))/n, so both directions exercise the same
// oblivious algorithm). The cost report folds the forward transform's trace
// onto several machines.
//
// Build & run:  ./examples/spectral_filter
#include <cmath>
#include <complex>
#include <iostream>
#include <numbers>
#include <vector>

#include "algorithms/fft.hpp"
#include "bsp/cost.hpp"
#include "bsp/topology.hpp"
#include "core/lower_bounds.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace nobl;
  using C = std::complex<double>;
  constexpr std::uint64_t n = 1024;

  // Two tones plus broadband noise.
  Xoshiro256 rng(2026);
  std::vector<C> clean(n), noisy(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    const double tj = static_cast<double>(j);
    const double s = std::sin(2 * std::numbers::pi * 5 * tj / n) +
                     0.5 * std::sin(2 * std::numbers::pi * 12 * tj / n);
    clean[j] = s;
    noisy[j] = s + 0.8 * (rng.unit() * 2 - 1);
  }

  // Forward transform, low-pass mask, inverse transform — both directions
  // run the same network-oblivious schedule.
  auto spectrum = fft_oblivious(noisy);
  constexpr std::uint64_t cutoff = 24;
  for (std::uint64_t k = cutoff; k < n - cutoff; ++k) spectrum.output[k] = 0;

  const auto inverse = ifft_oblivious(spectrum.output);
  std::vector<double> filtered(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    filtered[j] = inverse.output[j].real();
  }

  double err_noisy = 0, err_filtered = 0;
  for (std::uint64_t j = 0; j < n; ++j) {
    err_noisy += std::norm(noisy[j] - clean[j]);
    err_filtered += std::norm(C(filtered[j]) - clean[j]);
  }
  std::cout << "low-pass filter, n = " << n << ", cutoff = " << cutoff
            << "\n  mean-square error before: " << err_noisy / n
            << "\n  mean-square error after:  " << err_filtered / n << "\n\n";

  // Cost report for the forward transform.
  Table t("Forward FFT cost from one trace (Theorem 4.5 vs Lemma 4.4)",
          {"p", "H(sigma=0)", "LB", "H/LB", "D hypercube", "D 2d-mesh"});
  for (std::uint64_t p = 4; p <= n; p *= 8) {
    const unsigned log_p = log2_exact(p);
    const double h = communication_complexity(spectrum.trace, log_p, 0);
    t.row()
        .add(p)
        .add(h)
        .add(lb::fft(n, p, 0))
        .add(h / lb::fft(n, p, 0))
        .add(communication_time(spectrum.trace, topology::hypercube(p)))
        .add(communication_time(spectrum.trace, topology::mesh(p, 2)));
  }
  std::cout << t;
  return err_filtered < err_noisy ? 0 : 1;
}
